//! The shared migration/abort cost model: what does it cost, in remaining
//! execution time (`cpm`) and in not-yet-consumed energy (`ep + em`), to run
//! a task on a given resource?
//!
//! Interpretation decisions (documented in `DESIGN.md` §5):
//!
//! * the paper's `cpm` charges `cm`/`em` whenever a task is *relocated*
//!   from its currently assigned resource — started or not (staging a
//!   task's inputs elsewhere is not free, and this stickiness is what makes
//!   one-step lookahead valuable). A task that was never mapped (arriving,
//!   predicted) pays nothing for its first placement;
//! * a started task on a *preemptable* resource migrates proportionally:
//!   `cp_{j,k} = c_{j,k} · (cp_{j,i} / c_{j,i})` plus `cm`/`em` (paper
//!   Sec 4.1);
//! * a started task on a *non-preemptable* resource (GPU) cannot move with
//!   state: it either stays (and is pinned — it must run to completion
//!   first) or is aborted and restarted from scratch anywhere, with no
//!   migration overhead (nothing is transferred) but with its full WCET and
//!   energy ahead of it again.

use serde::{Deserialize, Serialize};

use rtrm_platform::{Energy, Platform, ResourceId, TaskCatalog, Time};

use crate::view::JobView;

/// One way of placing a job on a resource, with its planning costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Target resource.
    pub resource: ResourceId,
    /// Remaining worst-case execution time there, including migration time
    /// overhead (the paper's `cpm_{j,i}`), at the candidate's speed.
    pub exec: Time,
    /// Energy still to be spent there, including migration energy overhead
    /// (the paper's `ep_{j,i} + em_{j,k,i}`), at the candidate's speed.
    /// Already-consumed energy is sunk and excluded.
    pub energy: Energy,
    /// The job is mid-run on this non-preemptable resource and must be
    /// dispatched first if it stays.
    pub pinned: bool,
    /// Progress is discarded: the job restarts from scratch (GPU abort).
    pub restart: bool,
    /// DVFS speed level (factor of nominal frequency): execution time
    /// scales with `1/speed`, dynamic energy with `speed²`. `1.0` on
    /// resources without frequency scaling. The speed is chosen when the
    /// task is placed and kept until it finishes or is relocated.
    pub speed: f64,
}

/// Enumerates every way `job` can be placed, given the platform and catalog.
///
/// `gpu_restart_in_place` additionally offers "abort and re-queue on the same
/// GPU" for a GPU-running job — energy-dominated by staying, but it unpins
/// the job, which can rescue an urgent arrival (Fig 1's scenario (a)
/// discussion). The exact optimizer enables it; the heuristic follows
/// Algorithm 1, which considers one desirability value per resource, and
/// keeps the dominant "stay" option only.
#[must_use]
pub fn candidates(
    job: &JobView,
    platform: &Platform,
    catalog: &TaskCatalog,
    gpu_restart_in_place: bool,
) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(platform.len() + 1);
    candidates_into(job, platform, catalog, gpu_restart_in_place, &mut out);
    out
}

/// Allocation-reusing form of [`candidates`]: appends the job's candidates
/// to `out` (without clearing it), so a caller building a whole activation's
/// candidate table can keep every row in one recycled arena.
pub fn candidates_into(
    job: &JobView,
    platform: &Platform,
    catalog: &TaskCatalog,
    gpu_restart_in_place: bool,
    out: &mut Vec<Candidate>,
) {
    let ty = catalog.task_type(job.task_type);

    for resource in platform.ids() {
        let Some(profile) = ty.profile(resource) else {
            continue; // not executable there (the paper's "dummy values")
        };
        // Effective profile at a DVFS level: time 1/s, dynamic energy s².
        let levels = platform.resource(resource).speed_levels();
        let eff = |s: f64| (profile.wcet / s, profile.energy * (s * s));

        match job.placement {
            // Fresh (or admitted but never run): no state, free re-mapping;
            // every speed level of every executable resource is open.
            None => {
                for &s in levels {
                    let (wcet, energy) = eff(s);
                    out.push(Candidate {
                        resource,
                        exec: wcet,
                        energy,
                        pinned: false,
                        restart: false,
                        speed: s,
                    });
                }
            }
            // Admitted but never run: no execution state, but relocating it
            // still pays the migration overhead (its inputs were staged on
            // `p.resource`). Staying keeps any pending relocation debt,
            // which `remaining_fraction` already reflects, and the speed
            // chosen at placement; relocation re-opens the speed choice.
            Some(p) if !p.started => {
                if p.resource == resource {
                    let (wcet, energy) = eff(p.speed);
                    out.push(Candidate {
                        resource,
                        exec: wcet * p.remaining_fraction,
                        energy,
                        pinned: false,
                        restart: false,
                        speed: p.speed,
                    });
                } else {
                    let m = ty.migration(p.resource, resource);
                    for &s in levels {
                        let (wcet, energy) = eff(s);
                        out.push(Candidate {
                            resource,
                            exec: wcet + m.time,
                            energy: energy + m.energy,
                            pinned: false,
                            restart: false,
                            speed: s,
                        });
                    }
                }
            }
            Some(p) => {
                let from_kind = platform.resource(p.resource).kind();
                if p.resource == resource {
                    // Stay where it is: remaining work at the running speed.
                    let (wcet, energy) = eff(p.speed);
                    out.push(Candidate {
                        resource,
                        exec: wcet * p.remaining_fraction,
                        energy: energy * p.remaining_fraction,
                        pinned: !from_kind.is_preemptable(),
                        restart: false,
                        speed: p.speed,
                    });
                    if gpu_restart_in_place && !from_kind.is_preemptable() {
                        for &s in levels {
                            let (wcet, energy) = eff(s);
                            out.push(Candidate {
                                resource,
                                exec: wcet,
                                energy,
                                pinned: false,
                                restart: true,
                                speed: s,
                            });
                        }
                    }
                } else if from_kind.is_preemptable() {
                    // A non-preemptable destination cannot resume
                    // checkpointed state: started tasks may only migrate
                    // between preemptable resources (DESIGN.md §5).
                    if !platform.resource(resource).kind().is_preemptable() {
                        continue;
                    }
                    // Proportional migration with overhead; the destination
                    // speed is a fresh choice.
                    let m = ty.migration(p.resource, resource);
                    for &s in levels {
                        let (wcet, energy) = eff(s);
                        out.push(Candidate {
                            resource,
                            exec: wcet * p.remaining_fraction + m.time,
                            energy: energy * p.remaining_fraction + m.energy,
                            pinned: false,
                            restart: false,
                            speed: s,
                        });
                    }
                } else {
                    // Abort the GPU run, restart from scratch elsewhere.
                    for &s in levels {
                        let (wcet, energy) = eff(s);
                        out.push(Candidate {
                            resource,
                            exec: wcet,
                            energy,
                            pinned: false,
                            restart: true,
                            speed: s,
                        });
                    }
                }
            }
        }
    }
}

/// The cheapest not-yet-consumed energy over all placements of `job`, a
/// lower bound used by the exact optimizer's pruning.
#[must_use]
pub fn min_energy(job: &JobView, platform: &Platform, catalog: &TaskCatalog) -> Energy {
    candidates(job, platform, catalog, false)
        .into_iter()
        .map(|c| c.energy)
        .min()
        .unwrap_or(Energy::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::Placement;
    use rtrm_platform::{TaskType, TaskTypeId};
    use rtrm_sched::JobKey;

    /// CPU0, CPU1, GPU platform with one task type:
    /// wcet [8, 12, 5], energy [7.3, 8.4, 2.0], migration 1.0/0.5 everywhere.
    fn setup() -> (Platform, TaskCatalog) {
        let platform = Platform::builder().cpus(2).gpu("g").build();
        let ids: Vec<_> = platform.ids().collect();
        let ty = TaskType::builder(0, &platform)
            .profile(ids[0], Time::new(8.0), Energy::new(7.3))
            .profile(ids[1], Time::new(12.0), Energy::new(8.4))
            .profile(ids[2], Time::new(5.0), Energy::new(2.0))
            .uniform_migration(Time::new(1.0), Energy::new(0.5))
            .build();
        (platform, TaskCatalog::new(vec![ty]))
    }

    fn r(i: usize) -> ResourceId {
        ResourceId::new(i)
    }

    fn find(cands: &[Candidate], resource: ResourceId, restart: bool) -> Candidate {
        *cands
            .iter()
            .find(|c| c.resource == resource && c.restart == restart)
            .expect("candidate exists")
    }

    #[test]
    fn fresh_job_has_full_profiles_everywhere() {
        let (platform, catalog) = setup();
        let job = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(20.0));
        let cands = candidates(&job, &platform, &catalog, false);
        assert_eq!(cands.len(), 3);
        let gpu = find(&cands, r(2), false);
        assert_eq!(gpu.exec, Time::new(5.0));
        assert_eq!(gpu.energy, Energy::new(2.0));
        assert!(!gpu.pinned && !gpu.restart);
    }

    #[test]
    fn cpu_migration_is_proportional_plus_overhead() {
        let (platform, catalog) = setup();
        let mut job = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(20.0));
        job.placement = Some(Placement {
            resource: r(0),
            remaining_fraction: 0.5,
            started: true,
            speed: 1.0,
        });
        let cands = candidates(&job, &platform, &catalog, false);
        let stay = find(&cands, r(0), false);
        assert_eq!(stay.exec, Time::new(4.0));
        assert_eq!(stay.energy, Energy::new(3.65));
        assert!(!stay.pinned);
        let migrate = find(&cands, r(1), false);
        assert_eq!(migrate.exec, Time::new(7.0)); // 12·0.5 + 1
        assert_eq!(migrate.energy, Energy::new(4.7)); // 8.4·0.5 + 0.5
        assert!(
            !cands.iter().any(|c| c.resource == r(2)),
            "a started task cannot move onto the GPU (no state resume there)"
        );
    }

    #[test]
    fn gpu_running_job_stays_pinned_or_restarts() {
        let (platform, catalog) = setup();
        let mut job = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(20.0));
        job.placement = Some(Placement {
            resource: r(2),
            remaining_fraction: 0.8,
            started: true,
            speed: 1.0,
        });
        let cands = candidates(&job, &platform, &catalog, true);
        let stay = find(&cands, r(2), false);
        assert!(stay.pinned);
        assert_eq!(stay.exec, Time::new(4.0)); // 5·0.8
        let requeue = find(&cands, r(2), true);
        assert!(!requeue.pinned && requeue.restart);
        assert_eq!(requeue.exec, Time::new(5.0));
        let abort_to_cpu = find(&cands, r(0), true);
        assert_eq!(abort_to_cpu.exec, Time::new(8.0)); // full, no cm
        assert_eq!(abort_to_cpu.energy, Energy::new(7.3)); // full, no em
    }

    #[test]
    fn restart_in_place_excluded_by_default() {
        let (platform, catalog) = setup();
        let mut job = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(20.0));
        job.placement = Some(Placement {
            resource: r(2),
            remaining_fraction: 0.8,
            started: true,
            speed: 1.0,
        });
        let cands = candidates(&job, &platform, &catalog, false);
        assert_eq!(cands.iter().filter(|c| c.resource == r(2)).count(), 1);
    }

    #[test]
    fn unstarted_placed_job_pays_relocation() {
        let (platform, catalog) = setup();
        let mut job = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(20.0));
        job.placement = Some(Placement {
            resource: r(2),
            remaining_fraction: 1.0,
            started: false,
            speed: 1.0,
        });
        let cands = candidates(&job, &platform, &catalog, false);
        let to_cpu = find(&cands, r(0), false);
        assert_eq!(to_cpu.exec, Time::new(9.0)); // 8 + cm 1.0
        assert_eq!(to_cpu.energy, Energy::new(7.8)); // 7.3 + em 0.5
        let stay = find(&cands, r(2), false);
        assert!(!stay.pinned, "unstarted GPU job is not pinned");
        assert_eq!(stay.exec, Time::new(5.0));
        assert_eq!(stay.energy, Energy::new(2.0));
    }

    #[test]
    fn unstarted_relocation_debt_persists_on_stay() {
        let (platform, catalog) = setup();
        let mut job = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(20.0));
        // Previously relocated to CPU0: busy time 8 + 1 = 9, fraction 9/8.
        job.placement = Some(Placement {
            resource: r(0),
            remaining_fraction: 9.0 / 8.0,
            started: false,
            speed: 1.0,
        });
        let cands = candidates(&job, &platform, &catalog, false);
        let stay = find(&cands, r(0), false);
        assert_eq!(stay.exec, Time::new(9.0));
        assert_eq!(
            stay.energy,
            Energy::new(7.3),
            "debt carries no extra energy"
        );
    }

    #[test]
    fn min_energy_is_gpu_here() {
        let (platform, catalog) = setup();
        let job = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(20.0));
        assert_eq!(min_energy(&job, &platform, &catalog), Energy::new(2.0));
    }

    #[test]
    fn non_executable_resources_skipped() {
        let platform = Platform::builder().cpus(2).build();
        let ids: Vec<_> = platform.ids().collect();
        let ty = TaskType::builder(0, &platform)
            .profile(ids[1], Time::new(3.0), Energy::new(1.0))
            .build();
        let catalog = TaskCatalog::new(vec![ty]);
        let job = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(20.0));
        let cands = candidates(&job, &platform, &catalog, false);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].resource, ids[1]);
    }
}
