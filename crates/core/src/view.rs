//! The resource manager's view of one task at an activation instant.

use serde::{Deserialize, Serialize};

use rtrm_platform::{ResourceId, TaskTypeId, Time};
use rtrm_sched::JobKey;

/// Where a task currently lives and how far it has progressed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Resource the task is currently mapped to.
    pub resource: ResourceId,
    /// Fraction of the task's work still to be done on `resource`
    /// (`cp / c` in the paper), in `(0, 1]`, measured against the
    /// *effective* WCET at the placement's speed.
    pub remaining_fraction: f64,
    /// `true` once the task has consumed any execution time. Only started
    /// tasks carry state: migrating them costs the `cm`/`em` overheads, and
    /// on a GPU a started task is irrevocably committed (abort loses all
    /// progress).
    pub started: bool,
    /// DVFS speed level the placement runs at (factor of the nominal
    /// frequency; `1.0` on resources without frequency scaling). Execution
    /// time scales with `1/speed`, dynamic energy with `speed²`.
    pub speed: f64,
}

impl Placement {
    /// A full-speed placement (the common, non-DVFS case).
    #[must_use]
    pub fn new(resource: ResourceId, remaining_fraction: f64, started: bool) -> Self {
        Placement {
            resource,
            remaining_fraction,
            started,
            speed: 1.0,
        }
    }
}

/// One task as seen by the resource manager at an activation: an element of
/// the paper's set S̄ — an active task, the arriving task, or the predicted
/// phantom task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobView {
    /// Identity, stable across activations.
    pub key: JobKey,
    /// Task type (execution profiles and migration overheads).
    pub task_type: TaskTypeId,
    /// Earliest time the task may execute: its arrival, plus the prediction
    /// overhead for the arriving task (Sec 5.5), or the predicted arrival
    /// `s_p` for the phantom task.
    pub release: Time,
    /// Absolute deadline (`s_j + d_j`).
    pub deadline: Time,
    /// Current placement; `None` for tasks that have not been mapped yet
    /// (the arriving and predicted tasks).
    pub placement: Option<Placement>,
}

impl JobView {
    /// A fresh, not-yet-mapped task.
    #[must_use]
    pub fn fresh(key: JobKey, task_type: TaskTypeId, release: Time, deadline: Time) -> Self {
        JobView {
            key,
            task_type,
            release,
            deadline,
            placement: None,
        }
    }

    /// The paper's `t_left`: time from the activation instant `now` to the
    /// absolute deadline, further reduced if the task's release is delayed
    /// past `now` (prediction overhead / predicted arrival).
    #[must_use]
    pub fn time_left(&self, now: Time) -> Time {
        self.deadline - self.release.max(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_left_accounts_for_delayed_release() {
        let j = JobView::fresh(
            JobKey(1),
            TaskTypeId::new(0),
            Time::new(12.0),
            Time::new(20.0),
        );
        assert_eq!(j.time_left(Time::new(10.0)), Time::new(8.0));
        assert_eq!(j.time_left(Time::new(15.0)), Time::new(5.0));
    }
}
