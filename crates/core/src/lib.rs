//! # rtrm-core
//!
//! The resource managers of *Niknafs, Ukhov, Eles, Peng — "Runtime Resource
//! Management with Workload Prediction", DAC 2019*: at every request arrival
//! they map (and, through per-resource EDF, schedule) the arriving task
//! together with all active tasks so that every deadline holds at minimum
//! energy — optionally also planning around a *predicted* next request.
//!
//! Three interchangeable [`ResourceManager`] policies:
//!
//! * [`HeuristicRm`] — the paper's fast knapsack heuristic (Algorithm 1);
//! * [`ExactRm`] — exact energy-optimal mapping by branch & bound with
//!   EDF-timeline feasibility (the paper's "MILP" series, solver-free);
//! * [`MilpRm`] — the paper's Sec 4.2 MILP formulation solved with the
//!   bundled [`rtrm_milp`] simplex / branch & bound solver;
//! * [`StaticRm`] — a quasi-static design-time-mapping baseline in the
//!   spirit of the related work the paper contrasts against.
//!
//! All three honour the paper's fallback rule: if no plan accommodates the
//! predicted task, a plan without it is attempted before the arriving task
//! is rejected.
//!
//! # Examples
//!
//! The paper's motivational example (Table 1), without prediction — the
//! manager greedily parks τ₁ on the GPU:
//!
//! ```
//! use rtrm_core::{Activation, ExactRm, JobView, ResourceManager};
//! use rtrm_platform::{Energy, Platform, TaskCatalog, TaskType, TaskTypeId, Time};
//! use rtrm_sched::JobKey;
//!
//! let platform = Platform::builder().cpus(2).gpu("gpu").build();
//! let ids: Vec<_> = platform.ids().collect();
//! let tau1 = TaskType::builder(0, &platform)
//!     .profile(ids[0], Time::new(8.0), Energy::new(7.3))
//!     .profile(ids[1], Time::new(12.0), Energy::new(8.4))
//!     .profile(ids[2], Time::new(5.0), Energy::new(2.0))
//!     .build();
//! let catalog = TaskCatalog::new(vec![tau1]);
//!
//! let mut rm = ExactRm::new();
//! let decision = rm.decide(&Activation {
//!     now: Time::new(0.0),
//!     platform: &platform,
//!     catalog: &catalog,
//!     active: &[],
//!     arriving: JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::new(0.0), Time::new(8.0)),
//!     predicted: &[],
//! });
//! assert!(decision.admitted);
//! assert_eq!(decision.assignments[0].resource, ids[2]); // the GPU: 2 J
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod activation;
mod cost;
mod driver;
mod exact;
mod heuristic;
mod milp_rm;
mod prune;
mod static_rm;
mod view;

pub use activation::{
    Activation, Assignment, Decision, PlanBuilder, ResourceManager, TimelinePool,
};
pub use cost::{candidates, candidates_into, min_energy, Candidate};
pub use driver::{
    decide_with_fallback, decide_with_fallback_tracked, gate_horizon, Attempt, HorizonPolicy, Plan,
};
pub use exact::ExactRm;
pub use heuristic::{most_desirable_resource, HeuristicRm};
pub use milp_rm::MilpRm;
pub use prune::{pareto_front, CandidateTable, PruneStats};
pub use static_rm::StaticRm;
pub use view::{JobView, Placement};
