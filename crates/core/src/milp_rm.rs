//! The paper's MILP formulation (Sec 4.2), encoded through the `rtrm-milp`
//! solver.
//!
//! Once a mapping is fixed, the schedule on every resource is EDF-determined
//! (Sec 4.1), so the formulation is over binary placement variables plus
//! auxiliary disjunction binaries:
//!
//! * **(1)** every task takes exactly one placement;
//! * **(2)** only placements with `cpm_{j,i} ≤ t_left_j` exist (filtered out
//!   of the variable set);
//! * **(3)** per resource, deadline-ordered prefix sums of the chosen
//!   execution demands respect each task's `t_left` (big-M–guarded by the
//!   task's own placement variable — the paper writes the constraint
//!   unconditionally, which over-constrains; the big-M guard is the intended
//!   reading);
//! * **(4)–(7)** the predicted task `τ_p` either waits for the earlier-
//!   deadline work to finish or preempts later-deadline work on a CPU; the
//!   wait-vs-preempt disjunction and the per-task "finished before `s_p`"
//!   disjunctions are big-M encodings. Instead of the paper's explicit chunk
//!   variables (8)–(14) we encode the EDF fact that a preempted task's
//!   completion is delayed by exactly `cp_p` — equivalent for a single
//!   future release and far fewer variables;
//! * on a GPU the predicted task never preempts (Sec 4.2): it is planned
//!   after all work mapped there, the literal reading of (4)/(5).
//!
//! A task already running on a non-preemptable resource contributes its
//! "stay" placement at the head of that resource's order (it physically
//! occupies it).
//!
//! Divergence from the timeline-exact [`ExactRm`](crate::ExactRm), by
//! design: (a) a delayed release of the *arriving* task (prediction
//! overhead, Sec 5.5) is modelled by its shrunken `t_left` only, and (b) the
//! GPU treatment of the predicted task is the paper's conservative
//! last-position rule rather than non-preemptive EDF insertion. Without a
//! predicted task and without overhead the two optimizers agree exactly
//! (asserted by cross-validation tests).

use rtrm_milp::{Model, Sense, SolveError, SolveOptions, Termination, VarId};
use rtrm_platform::{Energy, ResourceKind, Time};

use crate::activation::{Activation, Decision, ResourceManager, TimelinePool};
use crate::cost::{candidates, Candidate};
use crate::driver::{decide_with_fallback_tracked, Attempt, Plan};
use crate::heuristic::HeuristicRm;
use crate::view::JobView;

/// Resource manager that solves the paper's Sec 4.2 MILP with the bundled
/// simplex/branch & bound solver.
#[derive(Debug, Clone)]
pub struct MilpRm {
    /// Solver limits per activation. `options.presolve` also gates the
    /// encoding-level dominance drop (see [`MilpRm::warm_start`] for the
    /// incumbent seeding).
    pub options: SolveOptions,
    /// Offer "abort and re-queue on the same GPU" placements (see
    /// [`candidates`](crate::candidates)).
    pub gpu_restart_in_place: bool,
    /// Seed every rung's solve with the heuristic's plan, translated into a
    /// full assignment (placement binaries plus the derived disjunction
    /// binaries) and threaded through
    /// [`SolveOptions::warm_start`]. The solver validates the point and
    /// prunes against it with the exact bound, replacing it with the first
    /// equally good search-discovered solution — decisions stay
    /// bit-identical to a cold solve. Enabled by default; disable for the
    /// cold A/B baseline.
    pub warm_start: bool,
}

impl Default for MilpRm {
    fn default() -> Self {
        MilpRm {
            options: SolveOptions::default(),
            gpu_restart_in_place: true,
            warm_start: true,
        }
    }
}

/// A heuristic plan translated to the MILP's candidate space: the chosen
/// candidate per real job, plus the first phantom's placement when the rung
/// models one.
struct WarmSeed {
    real: Vec<Candidate>,
    pred: Option<Candidate>,
}

/// Dominance presolve on the MILP's candidate rows: drops every candidate
/// `B` for which some `A` of the same job on the same (resource, pinned)
/// group has strictly smaller energy and no larger execution time. Any
/// assignment using `B` swaps to `A`, stays feasible in every row of the
/// encoding (the swap only shrinks the guarded prefix sums — `A` and `B`
/// share the job, hence the deadline, hence their EDF slot), and strictly
/// improves the objective, so `B` appears in no *integer* optimum and in no
/// equal-cost integer optimum either.
///
/// The swap argument covers integral solutions only: the LP **relaxation**
/// can place fractional mass on a dominated column (its larger exec can
/// help satisfy the big-M `≥` rows), so removing the column can change
/// relaxation optima and with them the branch & bound path — and among
/// equal-cost integer optima (common on symmetric platforms) a different
/// path can in principle surface a different assignment. Unlike
/// [`ExactRm`](crate::ExactRm), which keys its branch order on the
/// pre-drop rows, `MilpRm` has no structural tie-break invariance here:
/// that presolved and unpresolved *decisions* agree is validated by the
/// sampled `presolve_differential.rs` proptest, not proven.
///
/// Mirrors `exact.rs`'s `drop_dominated_rows`, which requires energy-sorted
/// rows; the MILP rows keep emission order (it is the variable order), so
/// this judges a sorted index view and drops in place, preserving the
/// survivors' original order.
fn drop_dominated_unsorted(rows: &mut [Vec<Candidate>], num_resources: usize) {
    let mut frontier: Vec<Option<Time>> = vec![None; num_resources * 2];
    let mut idx: Vec<usize> = Vec::new();
    let mut dropped: Vec<bool> = Vec::new();
    for row in rows.iter_mut() {
        frontier.iter_mut().for_each(|slot| *slot = None);
        idx.clear();
        idx.extend(0..row.len());
        idx.sort_by(|&a, &b| row[a].energy.cmp(&row[b].energy));
        dropped.clear();
        dropped.resize(row.len(), false);
        let mut any = false;
        // Runs of equal energy are judged against the frontier before being
        // folded into it, keeping the energy comparison strict.
        let mut i = 0;
        while i < idx.len() {
            let mut j = i;
            while j < idx.len() && row[idx[j]].energy == row[idx[i]].energy {
                j += 1;
            }
            for &k in &idx[i..j] {
                let slot = row[k].resource.index() * 2 + usize::from(row[k].pinned);
                if frontier[slot].is_some_and(|exec| exec <= row[k].exec) {
                    dropped[k] = true;
                    any = true;
                }
            }
            for &k in &idx[i..j] {
                let slot = row[k].resource.index() * 2 + usize::from(row[k].pinned);
                let exec = row[k].exec;
                frontier[slot] = Some(frontier[slot].map_or(exec, |e| e.min(exec)));
            }
            i = j;
        }
        if any {
            let mut k = 0;
            row.retain(|_| {
                let drop = dropped[k];
                k += 1;
                !drop
            });
        }
    }
}

impl MilpRm {
    /// Creates the MILP-backed manager with default solver limits.
    #[must_use]
    pub fn new() -> Self {
        MilpRm::default()
    }

    /// Creates a manager whose solver runs anytime under `max_wall_clock_secs`
    /// of wall-clock budget *per fallback rung*: on expiry the best incumbent
    /// is used, and when no incumbent exists the activation degrades down the
    /// ladder (k phantoms, k−1, …, none) to the paper's heuristic as a floor —
    /// an arriving task is never dropped because the solver ran long.
    #[must_use]
    pub fn with_wall_clock(max_wall_clock_secs: f64) -> Self {
        MilpRm {
            options: SolveOptions::with_wall_clock(max_wall_clock_secs),
            ..MilpRm::default()
        }
    }

    /// Candidate variables per job (constraint (2) filters infeasible
    /// placements away). Emission order is preserved: it is the MILP's
    /// variable order, which tie-broken optima depend on.
    fn collect(&self, activation: &Activation<'_>, j: &JobView) -> Vec<Candidate> {
        let tleft = j.time_left(activation.now);
        candidates(
            j,
            activation.platform,
            activation.catalog,
            self.gpu_restart_in_place,
        )
        .into_iter()
        .filter(|c| c.exec <= tleft)
        .collect()
    }

    /// One rung of the fallback ladder. The candidate rows are built once
    /// per decide and shared across all rungs (the deadline filter depends
    /// on the activation, not the rung): previously `candidates()` was
    /// recomputed from scratch for every rung even though every rung plans
    /// the same real jobs.
    fn solve(
        &self,
        activation: &Activation<'_>,
        num_phantoms: usize,
        real_jobs: &[JobView],
        real_cands: &[Vec<Candidate>],
        pred_cands: &[Candidate],
        warm: Option<&WarmSeed>,
    ) -> Attempt {
        // The paper's formulation models a single predicted task; with a
        // longer lookahead this encoding honours the nearest phantom only
        // (documented divergence — use ExactRm for full multi-step plans).
        let predicted = if num_phantoms > 0 {
            activation.predicted.first()
        } else {
            None
        };

        let now = activation.now;
        let tleft = |j: &JobView| j.time_left(now);

        // On the no-phantom rung the predicted row must not exist at all —
        // it would otherwise leak into the big-M magnitude below.
        let pred_cands: &[Candidate] = if predicted.is_some() { pred_cands } else { &[] };

        if real_cands.iter().any(Vec::is_empty) {
            return Attempt::default();
        }
        if predicted.is_some() && pred_cands.is_empty() {
            return Attempt::default();
        }

        // A warm seed must cover every real job to translate; a stale one is
        // skipped here (and the solver validates the point again anyway).
        let warm = warm.filter(|s| s.real.len() == real_cands.len());
        // `warm_vals` mirrors every `model.binary()` call below with the
        // seed's value for that variable, so the finished vector lines up
        // with the model's variable order exactly.
        let mut warm_vals: Option<Vec<f64>> = warm.map(|_| Vec::new());

        let mut model = Model::new(Sense::Minimize);
        let real_vars: Vec<Vec<VarId>> = real_cands
            .iter()
            .enumerate()
            .map(|(j, cs)| {
                cs.iter()
                    .map(|c| {
                        if let (Some(vals), Some(seed)) = (warm_vals.as_mut(), warm) {
                            vals.push(f64::from(seed.real[j] == *c));
                        }
                        model.binary(c.energy.value())
                    })
                    .collect()
            })
            .collect();
        let pred_vars: Vec<VarId> = pred_cands
            .iter()
            .map(|c| {
                if let (Some(vals), Some(seed)) = (warm_vals.as_mut(), warm) {
                    vals.push(f64::from(seed.pred == Some(*c)));
                }
                model.binary(c.energy.value())
            })
            .collect();

        // (1): each task takes exactly one placement.
        for vars in &real_vars {
            let terms: Vec<_> = vars.iter().map(|v| (*v, 1.0)).collect();
            model.add_eq(&terms, 1.0);
        }
        if !pred_vars.is_empty() {
            let terms: Vec<_> = pred_vars.iter().map(|v| (*v, 1.0)).collect();
            model.add_eq(&terms, 1.0);
        }

        // Big-M: larger than any reachable time quantity in the plan. The
        // predicted-task disjunctions below are expressed in activation-
        // relative time (Δ = s_p − t and t_left_p = d_p − t), so the horizon
        // must be the activation-relative window `d_j − t` — NOT the
        // release-relative `time_left` used for candidate filtering, which
        // for a far-future phantom can be much smaller than Δ and would make
        // the z-disjunction infeasible for both branch values.
        let big_m = {
            let work: f64 = real_cands
                .iter()
                .flatten()
                .chain(pred_cands.iter())
                .map(|c| c.exec.value())
                .sum();
            let horizon: f64 = real_jobs
                .iter()
                .chain(predicted)
                .map(|j| (j.deadline - now).value().max(0.0))
                .fold(0.0, f64::max);
            2.0 * (work + horizon) + 1.0
        };

        // Entries on one resource: (job idx, deadline, exec, var, pinned).
        struct Entry {
            job: usize,
            deadline: Time,
            exec: f64,
            var: VarId,
            pinned: bool,
        }

        // Group every candidate by resource in ONE pass over the rows.
        // Scanning job-major preserves the (job, candidate) order inside
        // each group that the old per-resource rescan produced, so the
        // emitted model is identical; the rescan was O(resources ×
        // candidates) and dominated encode time at hundreds of resources.
        let mut groups: Vec<Vec<Entry>> =
            (0..activation.platform.len()).map(|_| Vec::new()).collect();
        for (j, (cs, vars)) in real_cands.iter().zip(&real_vars).enumerate() {
            for (c, v) in cs.iter().zip(vars) {
                groups[c.resource.index()].push(Entry {
                    job: j,
                    deadline: real_jobs[j].deadline,
                    exec: c.exec.value(),
                    var: *v,
                    pinned: c.pinned,
                });
            }
        }

        // Per-resource structures. A resource with no candidate entries and
        // no predicted placement emits no rows at all (its EDF block is
        // empty), which the loops below realise structurally.
        for resource in activation.platform.ids() {
            // Sorted pinned-first then by absolute deadline, the EDF
            // dispatch order of Sec 4.1.
            let mut entries = std::mem::take(&mut groups[resource.index()]);
            entries.sort_by(|a, b| {
                b.pinned
                    .cmp(&a.pinned)
                    .then(a.deadline.cmp(&b.deadline))
                    .then(a.job.cmp(&b.job))
            });

            // (3): prefix-sum deadline constraints, guarded by the entry's
            // own placement variable.
            for (rank, e) in entries.iter().enumerate() {
                let mut terms: Vec<(VarId, f64)> =
                    entries[..=rank].iter().map(|p| (p.var, p.exec)).collect();
                let t_left_j = tleft(&real_jobs[e.job]).value();
                terms.push((e.var, big_m));
                model.add_le(&terms, t_left_j + big_m);
            }

            // Predicted-task interference on this resource.
            let Some(p) = predicted else { continue };
            let Some((p_cand, p_var)) = pred_cands
                .iter()
                .zip(&pred_vars)
                .find(|(c, _)| c.resource == resource)
            else {
                continue;
            };
            let cp_p = p_cand.exec.value();
            // The paper's t_left_p = s_p + d_p − t is measured from the
            // activation instant, unlike the release-relative bound used for
            // candidate filtering.
            let tleft_p = (p.deadline - now).value();
            let delta = (p.release - now).value().max(0.0); // s_p − t
            let kind = activation.platform.resource(resource).kind();

            match kind {
                ResourceKind::Gpu => {
                    // No preemption on a GPU: τ_p starts at max(s_p, q_i)
                    // where q_i is when *all* work mapped here finishes —
                    // the literal reading of (4)/(5).
                    let mut terms: Vec<(VarId, f64)> =
                        entries.iter().map(|e| (e.var, e.exec)).collect();
                    terms.push((*p_var, big_m));
                    model.add_le(&terms, tleft_p - cp_p + big_m);
                    if delta + cp_p > tleft_p {
                        // (5) violated outright: τ_p cannot go here.
                        model.add_le(&[(*p_var, 1.0)], 0.0);
                    }
                }
                ResourceKind::Cpu => {
                    // Split by the predicted deadline: SL1 (≤ d_p) is never
                    // preempted; SL2 (> d_p) may be delayed by cp_p.
                    let dp = p.deadline;
                    let sl1: Vec<&Entry> = entries.iter().filter(|e| e.deadline <= dp).collect();
                    let sl2: Vec<&Entry> = entries.iter().filter(|e| e.deadline > dp).collect();

                    // q = time after `now` when SL1 work on i completes.
                    let q_terms: Vec<(VarId, f64)> = sl1.iter().map(|e| (e.var, e.exec)).collect();

                    // The seed's disjunction values are derived from its
                    // already-pushed placement values — exactly the
                    // semantics the rows below encode, so a feasible seed
                    // plan yields a feasible point.
                    let warm_q: Option<f64> = warm_vals
                        .as_ref()
                        .map(|vals| sl1.iter().map(|e| e.exec * vals[e.var.index()]).sum());

                    // z = 1 ⇔ q ≥ Δ (τ_p waits and starts at q).
                    if let (Some(vals), Some(q)) = (warm_vals.as_mut(), warm_q) {
                        vals.push(f64::from(q >= delta));
                    }
                    let z = model.binary(0.0);
                    // q ≥ Δ − M(1−z)  ⇔  −q − Mz ≤ −Δ − M·0 ... encode:
                    let mut ge_terms: Vec<(VarId, f64)> = q_terms.clone();
                    ge_terms.push((z, -big_m));
                    model.add_ge(&ge_terms, delta - big_m);
                    // q ≤ Δ + M·z
                    let mut le_terms: Vec<(VarId, f64)> = q_terms.clone();
                    le_terms.push((z, -big_m));
                    model.add_le(&le_terms, delta);

                    // (4): wait case (z = 1): q + cp_p ≤ t_left_p.
                    let mut t4: Vec<(VarId, f64)> = q_terms.clone();
                    t4.push((*p_var, big_m));
                    t4.push((z, big_m));
                    model.add_le(&t4, tleft_p - cp_p + 2.0 * big_m);
                    // (5): arrival bound (exact when z = 0, implied when
                    // z = 1): Δ + cp_p ≤ t_left_p.
                    if delta + cp_p > tleft_p {
                        model.add_le(&[(*p_var, 1.0)], 0.0);
                    }

                    // SL2 completion constraints.
                    for (rank2, e) in sl2.iter().enumerate() {
                        let t_left_j = tleft(&real_jobs[e.job]).value();
                        // pf_e = q + Σ_{SL2 prefix} x·exec  (time after now).
                        let mut pf: Vec<(VarId, f64)> = q_terms.clone();
                        pf.extend(sl2[..=rank2].iter().map(|p2| (p2.var, p2.exec)));

                        // Wait case (z = 1): the whole SL2 tail is pushed by
                        // cp_p when τ_p is here (eq. (7)).
                        let mut t7 = pf.clone();
                        t7.push((*p_var, cp_p + big_m));
                        t7.push((e.var, big_m));
                        t7.push((z, big_m));
                        model.add_le(&t7, t_left_j + 3.0 * big_m);

                        // Preempt case (z = 0): either e finishes before s_p
                        // (w = 1, pf ≤ Δ) or it is delayed by cp_p (w = 0).
                        if let (Some(vals), Some(q)) = (warm_vals.as_mut(), warm_q) {
                            let pf_val: f64 = q + sl2[..=rank2]
                                .iter()
                                .map(|p2| p2.exec * vals[p2.var.index()])
                                .sum::<f64>();
                            vals.push(f64::from(pf_val <= delta));
                        }
                        let w = model.binary(0.0);
                        let mut before: Vec<(VarId, f64)> = pf.clone();
                        before.push((w, big_m));
                        before.push((*p_var, big_m));
                        model.add_le(&before, delta + 2.0 * big_m);
                        let mut delayed = pf.clone();
                        delayed.push((*p_var, cp_p + big_m));
                        delayed.push((e.var, big_m));
                        delayed.push((w, -big_m));
                        delayed.push((z, -big_m));
                        model.add_le(&delayed, t_left_j + 2.0 * big_m);
                    }
                }
            }
        }

        let rung_options = SolveOptions {
            warm_start: warm_vals,
            ..self.options.clone()
        };
        let solution = match model.solve_with(&rung_options) {
            Ok(solution) => solution,
            // Wall-clock expiry with no incumbent: this rung failed *because
            // of time*, which the ladder must know to engage its floor.
            Err(SolveError::TimedOut) => {
                return Attempt {
                    plan: None,
                    timed_out: true,
                }
            }
            Err(_) => return Attempt::default(),
        };
        let timed_out = solution.termination() == Termination::TimedOut;

        let placements: Vec<_> = real_jobs
            .iter()
            .zip(real_cands.iter().zip(&real_vars))
            .map(|(job, (cs, vars))| {
                let (c, _) = cs
                    .iter()
                    .zip(vars)
                    .find(|(_, v)| solution.value(**v) > 0.5)
                    .expect("constraint (1) forces one placement");
                (job.key, *c)
            })
            .collect();
        let start_gates = match predicted {
            Some(p) => {
                let p_choice = pred_cands
                    .iter()
                    .zip(&pred_vars)
                    .find(|(_, v)| solution.value(**v) > 0.5)
                    .map(|(c, _)| *c)
                    .expect("constraint (1) forces one placement");
                let mut pool = crate::activation::TimelinePool::new();
                let mut plan = crate::activation::PlanBuilder::new(activation, &mut pool);
                for (job, c) in real_jobs.iter().zip(placements.iter().map(|(_, c)| c)) {
                    plan.place(job, c);
                }
                plan.place(p, &p_choice);
                plan.reservation_gates(&[p.key])
            }
            None => Vec::new(),
        };
        Attempt {
            plan: Some(Plan {
                placements,
                objective: Energy::new(solution.objective()),
                nodes: solution.nodes_explored(),
                start_gates,
            }),
            timed_out,
        }
    }
}

impl ResourceManager for MilpRm {
    fn name(&self) -> &str {
        "milp-encoded"
    }

    fn decide(&mut self, activation: &Activation<'_>) -> Decision {
        // Candidate rows are rung-independent (the deadline filter uses the
        // activation's `t_left`, not the rung), so build them once and share
        // them across the whole fallback ladder.
        let real_jobs: Vec<JobView> = activation.jobs_without_prediction().copied().collect();
        let mut real_cands: Vec<Vec<Candidate>> = real_jobs
            .iter()
            .map(|j| self.collect(activation, j))
            .collect();
        // Presolve: drop dominated placements before they become variables.
        // Real rows only — the predicted row's interference constraints bind
        // the *first* candidate per resource (the find-first in `solve`), so
        // dropping a predicted candidate could promote a previously slack
        // variable into the bound position and change the verdict.
        if self.options.presolve {
            drop_dominated_unsorted(&mut real_cands, activation.platform.len());
        }
        let pred_cands: Vec<Candidate> = activation
            .predicted
            .first()
            .map(|p| self.collect(activation, p))
            .unwrap_or_default();

        // Heuristic warm seeds, one per rung shape: every rung with k ≥ 1
        // phantoms encodes only the nearest one (see `solve`), so a single
        // 1-phantom seed covers them all and a 0-phantom seed covers the
        // rest. Computed once per decide, not per rung.
        let n_real = real_jobs.len();
        let seed = |kp: usize| -> Option<WarmSeed> {
            let mut pool = TimelinePool::new();
            HeuristicRm::new()
                .solve_unpruned_with_chosen(activation, kp, &mut pool)
                .filter(|(_, chosen)| chosen.len() == n_real + kp)
                .map(|(_, mut chosen)| {
                    let pred = chosen.get(n_real).copied();
                    chosen.truncate(n_real);
                    WarmSeed { real: chosen, pred }
                })
        };
        let (warm0, warm1) = if self.warm_start {
            let w1 = if activation.predicted.is_empty() {
                None
            } else {
                seed(1)
            };
            (seed(0), w1)
        } else {
            (None, None)
        };

        decide_with_fallback_tracked(
            activation,
            |act, k| {
                let warm = if k > 0 && !act.predicted.is_empty() {
                    warm1.as_ref()
                } else {
                    warm0.as_ref()
                };
                self.solve(act, k, &real_jobs, &real_cands, &pred_cands, warm)
            },
            // Heuristic floor: only consulted when every MILP rung failed and
            // at least one of those failures was a wall-clock expiry.
            |act| {
                let mut pool = TimelinePool::new();
                HeuristicRm::new().solve_unpruned(act, 0, &mut pool)
            },
        )
    }

    fn set_wall_clock(&mut self, budget: Option<f64>) {
        self.options.max_wall_clock_secs = budget.unwrap_or(f64::INFINITY);
    }
}
