//! The paper's MILP formulation (Sec 4.2), encoded through the `rtrm-milp`
//! solver.
//!
//! Once a mapping is fixed, the schedule on every resource is EDF-determined
//! (Sec 4.1), so the formulation is over binary placement variables plus
//! auxiliary disjunction binaries:
//!
//! * **(1)** every task takes exactly one placement;
//! * **(2)** only placements with `cpm_{j,i} ≤ t_left_j` exist (filtered out
//!   of the variable set);
//! * **(3)** per resource, deadline-ordered prefix sums of the chosen
//!   execution demands respect each task's `t_left` (big-M–guarded by the
//!   task's own placement variable — the paper writes the constraint
//!   unconditionally, which over-constrains; the big-M guard is the intended
//!   reading);
//! * **(4)–(7)** the predicted task `τ_p` either waits for the earlier-
//!   deadline work to finish or preempts later-deadline work on a CPU; the
//!   wait-vs-preempt disjunction and the per-task "finished before `s_p`"
//!   disjunctions are big-M encodings. Instead of the paper's explicit chunk
//!   variables (8)–(14) we encode the EDF fact that a preempted task's
//!   completion is delayed by exactly `cp_p` — equivalent for a single
//!   future release and far fewer variables;
//! * on a GPU the predicted task never preempts (Sec 4.2): it is planned
//!   after all work mapped there, the literal reading of (4)/(5).
//!
//! A task already running on a non-preemptable resource contributes its
//! "stay" placement at the head of that resource's order (it physically
//! occupies it).
//!
//! Divergence from the timeline-exact [`ExactRm`](crate::ExactRm), by
//! design: (a) a delayed release of the *arriving* task (prediction
//! overhead, Sec 5.5) is modelled by its shrunken `t_left` only, and (b) the
//! GPU treatment of the predicted task is the paper's conservative
//! last-position rule rather than non-preemptive EDF insertion. Without a
//! predicted task and without overhead the two optimizers agree exactly
//! (asserted by cross-validation tests).

use rtrm_milp::{Model, Sense, SolveError, SolveOptions, Termination, VarId};
use rtrm_platform::{Energy, ResourceKind, Time};

use crate::activation::{Activation, Decision, ResourceManager, TimelinePool};
use crate::cost::{candidates, Candidate};
use crate::driver::{decide_with_fallback_tracked, Attempt, Plan};
use crate::heuristic::HeuristicRm;
use crate::view::JobView;

/// Resource manager that solves the paper's Sec 4.2 MILP with the bundled
/// simplex/branch & bound solver.
#[derive(Debug, Clone)]
pub struct MilpRm {
    /// Solver limits per activation.
    pub options: SolveOptions,
    /// Offer "abort and re-queue on the same GPU" placements (see
    /// [`candidates`](crate::candidates)).
    pub gpu_restart_in_place: bool,
}

impl Default for MilpRm {
    fn default() -> Self {
        MilpRm {
            options: SolveOptions::default(),
            gpu_restart_in_place: true,
        }
    }
}

impl MilpRm {
    /// Creates the MILP-backed manager with default solver limits.
    #[must_use]
    pub fn new() -> Self {
        MilpRm::default()
    }

    /// Creates a manager whose solver runs anytime under `max_wall_clock_secs`
    /// of wall-clock budget *per fallback rung*: on expiry the best incumbent
    /// is used, and when no incumbent exists the activation degrades down the
    /// ladder (k phantoms, k−1, …, none) to the paper's heuristic as a floor —
    /// an arriving task is never dropped because the solver ran long.
    #[must_use]
    pub fn with_wall_clock(max_wall_clock_secs: f64) -> Self {
        MilpRm {
            options: SolveOptions::with_wall_clock(max_wall_clock_secs),
            ..MilpRm::default()
        }
    }

    /// Candidate variables per job (constraint (2) filters infeasible
    /// placements away). Emission order is preserved: it is the MILP's
    /// variable order, which tie-broken optima depend on.
    fn collect(&self, activation: &Activation<'_>, j: &JobView) -> Vec<Candidate> {
        let tleft = j.time_left(activation.now);
        candidates(
            j,
            activation.platform,
            activation.catalog,
            self.gpu_restart_in_place,
        )
        .into_iter()
        .filter(|c| c.exec <= tleft)
        .collect()
    }

    /// One rung of the fallback ladder. The candidate rows are built once
    /// per decide and shared across all rungs (the deadline filter depends
    /// on the activation, not the rung): previously `candidates()` was
    /// recomputed from scratch for every rung even though every rung plans
    /// the same real jobs.
    fn solve(
        &self,
        activation: &Activation<'_>,
        num_phantoms: usize,
        real_jobs: &[JobView],
        real_cands: &[Vec<Candidate>],
        pred_cands: &[Candidate],
    ) -> Attempt {
        // The paper's formulation models a single predicted task; with a
        // longer lookahead this encoding honours the nearest phantom only
        // (documented divergence — use ExactRm for full multi-step plans).
        let predicted = if num_phantoms > 0 {
            activation.predicted.first()
        } else {
            None
        };

        let now = activation.now;
        let tleft = |j: &JobView| j.time_left(now);

        // On the no-phantom rung the predicted row must not exist at all —
        // it would otherwise leak into the big-M magnitude below.
        let pred_cands: &[Candidate] = if predicted.is_some() { pred_cands } else { &[] };

        if real_cands.iter().any(Vec::is_empty) {
            return Attempt::default();
        }
        if predicted.is_some() && pred_cands.is_empty() {
            return Attempt::default();
        }

        let mut model = Model::new(Sense::Minimize);
        let real_vars: Vec<Vec<VarId>> = real_cands
            .iter()
            .map(|cs| cs.iter().map(|c| model.binary(c.energy.value())).collect())
            .collect();
        let pred_vars: Vec<VarId> = pred_cands
            .iter()
            .map(|c| model.binary(c.energy.value()))
            .collect();

        // (1): each task takes exactly one placement.
        for vars in &real_vars {
            let terms: Vec<_> = vars.iter().map(|v| (*v, 1.0)).collect();
            model.add_eq(&terms, 1.0);
        }
        if !pred_vars.is_empty() {
            let terms: Vec<_> = pred_vars.iter().map(|v| (*v, 1.0)).collect();
            model.add_eq(&terms, 1.0);
        }

        // Big-M: larger than any reachable time quantity in the plan. The
        // predicted-task disjunctions below are expressed in activation-
        // relative time (Δ = s_p − t and t_left_p = d_p − t), so the horizon
        // must be the activation-relative window `d_j − t` — NOT the
        // release-relative `time_left` used for candidate filtering, which
        // for a far-future phantom can be much smaller than Δ and would make
        // the z-disjunction infeasible for both branch values.
        let big_m = {
            let work: f64 = real_cands
                .iter()
                .flatten()
                .chain(pred_cands.iter())
                .map(|c| c.exec.value())
                .sum();
            let horizon: f64 = real_jobs
                .iter()
                .chain(predicted)
                .map(|j| (j.deadline - now).value().max(0.0))
                .fold(0.0, f64::max);
            2.0 * (work + horizon) + 1.0
        };

        // Per-resource structures.
        for resource in activation.platform.ids() {
            // Entries on this resource: (job idx, deadline, exec, var,
            // pinned). Sorted pinned-first then by absolute deadline, the
            // EDF dispatch order of Sec 4.1.
            struct Entry {
                job: usize,
                deadline: Time,
                exec: f64,
                var: VarId,
                pinned: bool,
            }
            let mut entries: Vec<Entry> = Vec::new();
            for (j, (cs, vars)) in real_cands.iter().zip(&real_vars).enumerate() {
                for (c, v) in cs.iter().zip(vars) {
                    if c.resource == resource {
                        entries.push(Entry {
                            job: j,
                            deadline: real_jobs[j].deadline,
                            exec: c.exec.value(),
                            var: *v,
                            pinned: c.pinned,
                        });
                    }
                }
            }
            entries.sort_by(|a, b| {
                b.pinned
                    .cmp(&a.pinned)
                    .then(a.deadline.cmp(&b.deadline))
                    .then(a.job.cmp(&b.job))
            });

            // (3): prefix-sum deadline constraints, guarded by the entry's
            // own placement variable.
            for (rank, e) in entries.iter().enumerate() {
                let mut terms: Vec<(VarId, f64)> =
                    entries[..=rank].iter().map(|p| (p.var, p.exec)).collect();
                let t_left_j = tleft(&real_jobs[e.job]).value();
                terms.push((e.var, big_m));
                model.add_le(&terms, t_left_j + big_m);
            }

            // Predicted-task interference on this resource.
            let Some(p) = predicted else { continue };
            let Some((p_cand, p_var)) = pred_cands
                .iter()
                .zip(&pred_vars)
                .find(|(c, _)| c.resource == resource)
            else {
                continue;
            };
            let cp_p = p_cand.exec.value();
            // The paper's t_left_p = s_p + d_p − t is measured from the
            // activation instant, unlike the release-relative bound used for
            // candidate filtering.
            let tleft_p = (p.deadline - now).value();
            let delta = (p.release - now).value().max(0.0); // s_p − t
            let kind = activation.platform.resource(resource).kind();

            match kind {
                ResourceKind::Gpu => {
                    // No preemption on a GPU: τ_p starts at max(s_p, q_i)
                    // where q_i is when *all* work mapped here finishes —
                    // the literal reading of (4)/(5).
                    let mut terms: Vec<(VarId, f64)> =
                        entries.iter().map(|e| (e.var, e.exec)).collect();
                    terms.push((*p_var, big_m));
                    model.add_le(&terms, tleft_p - cp_p + big_m);
                    if delta + cp_p > tleft_p {
                        // (5) violated outright: τ_p cannot go here.
                        model.add_le(&[(*p_var, 1.0)], 0.0);
                    }
                }
                ResourceKind::Cpu => {
                    // Split by the predicted deadline: SL1 (≤ d_p) is never
                    // preempted; SL2 (> d_p) may be delayed by cp_p.
                    let dp = p.deadline;
                    let sl1: Vec<&Entry> = entries.iter().filter(|e| e.deadline <= dp).collect();
                    let sl2: Vec<&Entry> = entries.iter().filter(|e| e.deadline > dp).collect();

                    // q = time after `now` when SL1 work on i completes.
                    let q_terms: Vec<(VarId, f64)> = sl1.iter().map(|e| (e.var, e.exec)).collect();

                    // z = 1 ⇔ q ≥ Δ (τ_p waits and starts at q).
                    let z = model.binary(0.0);
                    // q ≥ Δ − M(1−z)  ⇔  −q − Mz ≤ −Δ − M·0 ... encode:
                    let mut ge_terms: Vec<(VarId, f64)> = q_terms.clone();
                    ge_terms.push((z, -big_m));
                    model.add_ge(&ge_terms, delta - big_m);
                    // q ≤ Δ + M·z
                    let mut le_terms: Vec<(VarId, f64)> = q_terms.clone();
                    le_terms.push((z, -big_m));
                    model.add_le(&le_terms, delta);

                    // (4): wait case (z = 1): q + cp_p ≤ t_left_p.
                    let mut t4: Vec<(VarId, f64)> = q_terms.clone();
                    t4.push((*p_var, big_m));
                    t4.push((z, big_m));
                    model.add_le(&t4, tleft_p - cp_p + 2.0 * big_m);
                    // (5): arrival bound (exact when z = 0, implied when
                    // z = 1): Δ + cp_p ≤ t_left_p.
                    if delta + cp_p > tleft_p {
                        model.add_le(&[(*p_var, 1.0)], 0.0);
                    }

                    // SL2 completion constraints.
                    for (rank2, e) in sl2.iter().enumerate() {
                        let t_left_j = tleft(&real_jobs[e.job]).value();
                        // pf_e = q + Σ_{SL2 prefix} x·exec  (time after now).
                        let mut pf: Vec<(VarId, f64)> = q_terms.clone();
                        pf.extend(sl2[..=rank2].iter().map(|p2| (p2.var, p2.exec)));

                        // Wait case (z = 1): the whole SL2 tail is pushed by
                        // cp_p when τ_p is here (eq. (7)).
                        let mut t7 = pf.clone();
                        t7.push((*p_var, cp_p + big_m));
                        t7.push((e.var, big_m));
                        t7.push((z, big_m));
                        model.add_le(&t7, t_left_j + 3.0 * big_m);

                        // Preempt case (z = 0): either e finishes before s_p
                        // (w = 1, pf ≤ Δ) or it is delayed by cp_p (w = 0).
                        let w = model.binary(0.0);
                        let mut before: Vec<(VarId, f64)> = pf.clone();
                        before.push((w, big_m));
                        before.push((*p_var, big_m));
                        model.add_le(&before, delta + 2.0 * big_m);
                        let mut delayed = pf.clone();
                        delayed.push((*p_var, cp_p + big_m));
                        delayed.push((e.var, big_m));
                        delayed.push((w, -big_m));
                        delayed.push((z, -big_m));
                        model.add_le(&delayed, t_left_j + 2.0 * big_m);
                    }
                }
            }
        }

        let solution = match model.solve_with(&self.options) {
            Ok(solution) => solution,
            // Wall-clock expiry with no incumbent: this rung failed *because
            // of time*, which the ladder must know to engage its floor.
            Err(SolveError::TimedOut) => {
                return Attempt {
                    plan: None,
                    timed_out: true,
                }
            }
            Err(_) => return Attempt::default(),
        };
        let timed_out = solution.termination() == Termination::TimedOut;

        let placements: Vec<_> = real_jobs
            .iter()
            .zip(real_cands.iter().zip(&real_vars))
            .map(|(job, (cs, vars))| {
                let (c, _) = cs
                    .iter()
                    .zip(vars)
                    .find(|(_, v)| solution.value(**v) > 0.5)
                    .expect("constraint (1) forces one placement");
                (job.key, *c)
            })
            .collect();
        let start_gates = match predicted {
            Some(p) => {
                let p_choice = pred_cands
                    .iter()
                    .zip(&pred_vars)
                    .find(|(_, v)| solution.value(**v) > 0.5)
                    .map(|(c, _)| *c)
                    .expect("constraint (1) forces one placement");
                let mut pool = crate::activation::TimelinePool::new();
                let mut plan = crate::activation::PlanBuilder::new(activation, &mut pool);
                for (job, c) in real_jobs.iter().zip(placements.iter().map(|(_, c)| c)) {
                    plan.place(job, c);
                }
                plan.place(p, &p_choice);
                plan.reservation_gates(&[p.key])
            }
            None => Vec::new(),
        };
        Attempt {
            plan: Some(Plan {
                placements,
                objective: Energy::new(solution.objective()),
                nodes: solution.nodes_explored(),
                start_gates,
            }),
            timed_out,
        }
    }
}

impl ResourceManager for MilpRm {
    fn name(&self) -> &str {
        "milp-encoded"
    }

    fn decide(&mut self, activation: &Activation<'_>) -> Decision {
        // Candidate rows are rung-independent (the deadline filter uses the
        // activation's `t_left`, not the rung), so build them once and share
        // them across the whole fallback ladder.
        let real_jobs: Vec<JobView> = activation.jobs_without_prediction().copied().collect();
        let real_cands: Vec<Vec<Candidate>> = real_jobs
            .iter()
            .map(|j| self.collect(activation, j))
            .collect();
        let pred_cands: Vec<Candidate> = activation
            .predicted
            .first()
            .map(|p| self.collect(activation, p))
            .unwrap_or_default();
        decide_with_fallback_tracked(
            activation,
            |act, k| self.solve(act, k, &real_jobs, &real_cands, &pred_cands),
            // Heuristic floor: only consulted when every MILP rung failed and
            // at least one of those failures was a wall-clock expiry.
            |act| {
                let mut pool = TimelinePool::new();
                HeuristicRm::new().solve_unpruned(act, 0, &mut pool)
            },
        )
    }

    fn set_wall_clock(&mut self, budget: Option<f64>) {
        self.options.max_wall_clock_secs = budget.unwrap_or(f64::INFINITY);
    }
}
