//! A quasi-static baseline manager.
//!
//! The paper's related-work section contrasts its fully adaptive manager
//! with design-time approaches (quasi-static mappings prepared off-line,
//! e.g. Singh'16, Massari'14, Goens'17): each task type gets a fixed
//! placement computed once, and the runtime only performs admission. This
//! baseline makes that comparison concrete:
//!
//! * every task type is assigned its energy-cheapest executable resource at
//!   construction ("design time");
//! * at an arrival the manager appends the task to its type's resource if
//!   the EDF test passes there — active tasks are never migrated, never
//!   aborted, never re-ordered across resources;
//! * optionally (`spill`), placement may fall back to the next-cheapest
//!   resources when the static one is full — a common quasi-static
//!   refinement.
//!
//! Prediction is ignored: a static mapping cannot react to it (the
//! decision is the same with or without the phantom).

use rtrm_platform::{Energy, ResourceId, TaskCatalog};

use crate::activation::{
    Activation, Assignment, Decision, PlanBuilder, ResourceManager, TimelinePool,
};
use crate::cost::candidates;

/// Design-time (quasi-static) mapping baseline.
///
/// # Examples
///
/// ```
/// use rtrm_core::{StaticRm, ResourceManager};
/// use rtrm_platform::{Energy, Platform, TaskCatalog, TaskType, Time};
///
/// let platform = Platform::builder().cpus(1).gpu("g").build();
/// let ids: Vec<_> = platform.ids().collect();
/// let ty = TaskType::builder(0, &platform)
///     .profile(ids[0], Time::new(4.0), Energy::new(4.0))
///     .profile(ids[1], Time::new(2.0), Energy::new(1.0))
///     .build();
/// let catalog = TaskCatalog::new(vec![ty]);
/// let rm = StaticRm::new(&catalog);
/// assert_eq!(rm.name(), "static");
/// ```
#[derive(Debug, Clone)]
pub struct StaticRm {
    /// Energy-sorted placement preference per task type, computed at
    /// construction.
    preference: Vec<Vec<ResourceId>>,
    /// Allow falling back to the next-cheapest resource when the static one
    /// cannot schedule the task.
    pub spill: bool,
}

impl StaticRm {
    /// Builds the design-time mapping: each type's resources sorted by
    /// full-execution energy.
    #[must_use]
    pub fn new(catalog: &TaskCatalog) -> Self {
        let preference = catalog
            .iter()
            .map(|ty| {
                let mut rs: Vec<(ResourceId, Energy)> = ty
                    .executable_resources()
                    .map(|r| (r, ty.energy(r).expect("executable resource has a profile")))
                    .collect();
                rs.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
                rs.into_iter().map(|(r, _)| r).collect()
            })
            .collect();
        StaticRm {
            preference,
            spill: false,
        }
    }

    /// Variant that may spill to the next-cheapest resources when the
    /// statically chosen one is full.
    #[must_use]
    pub fn with_spill(catalog: &TaskCatalog) -> Self {
        StaticRm {
            spill: true,
            ..StaticRm::new(catalog)
        }
    }
}

impl ResourceManager for StaticRm {
    fn name(&self) -> &str {
        if self.spill {
            "static-spill"
        } else {
            "static"
        }
    }

    fn decide(&mut self, activation: &Activation<'_>) -> Decision {
        // Rebuild the fixed plan: every active task stays exactly where it
        // is; only the arriving task is placed.
        let mut pool = TimelinePool::new();
        let mut plan = PlanBuilder::new(activation, &mut pool);
        let mut assignments = Vec::with_capacity(activation.active.len() + 1);
        let mut objective = Energy::ZERO;
        for job in activation.active {
            let placement = job.placement.expect("active jobs are placed");
            let stay = candidates(job, activation.platform, activation.catalog, false)
                .into_iter()
                .find(|c| c.resource == placement.resource && !c.restart)
                .expect("staying in place is always a candidate");
            plan.place(job, &stay);
            objective += stay.energy;
            assignments.push(Assignment {
                key: job.key,
                resource: stay.resource,
                restart: false,
                speed: stay.speed,
            });
        }

        let job = &activation.arriving;
        let prefs = &self.preference[job.task_type.index()];
        let options = if self.spill { prefs.len() } else { 1 };
        for &resource in prefs.iter().take(options) {
            // Cheapest schedulable placement at this resource (with DVFS,
            // several speed levels exist; try energy-ascending).
            let mut at_resource: Vec<_> =
                candidates(job, activation.platform, activation.catalog, false)
                    .into_iter()
                    .filter(|c| c.resource == resource)
                    .collect();
            at_resource.sort_by_key(|a| a.energy);
            let Some(c) = at_resource
                .into_iter()
                .find(|c| c.exec <= job.time_left(activation.now) && plan.fits(job, c))
            else {
                continue;
            };
            {
                plan.place(job, &c);
                assignments.push(Assignment {
                    key: job.key,
                    resource,
                    restart: false,
                    speed: c.speed,
                });
                return Decision {
                    admitted: true,
                    assignments,
                    objective: objective + c.energy,
                    used_prediction: false,
                    nodes: 1,
                    start_gates: Vec::new(),
                    solver_timeouts: 0,
                    degraded: false,
                };
            }
        }
        Decision::reject()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{JobView, Placement};
    use rtrm_platform::{Platform, TaskType, TaskTypeId, Time};
    use rtrm_sched::JobKey;

    fn world() -> (Platform, TaskCatalog) {
        let platform = Platform::builder().cpus(1).gpu("g").build();
        let ids: Vec<_> = platform.ids().collect();
        let ty = TaskType::builder(0, &platform)
            .profile(ids[0], Time::new(4.0), Energy::new(4.0))
            .profile(ids[1], Time::new(2.0), Energy::new(1.0))
            .build();
        (platform, TaskCatalog::new(vec![ty]))
    }

    fn fresh(key: u64, release: f64, deadline: f64) -> JobView {
        JobView::fresh(
            JobKey(key),
            TaskTypeId::new(0),
            Time::new(release),
            Time::new(deadline),
        )
    }

    #[test]
    fn maps_to_design_time_resource() {
        let (platform, catalog) = world();
        let mut rm = StaticRm::new(&catalog);
        let d = rm.decide(&Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &[],
            arriving: fresh(0, 0.0, 10.0),
            predicted: &[],
        });
        assert!(d.admitted);
        assert_eq!(
            d.assignments[0].resource,
            ResourceId::new(1),
            "GPU is cheapest"
        );
    }

    #[test]
    fn no_spill_rejects_when_static_resource_full() {
        let (platform, catalog) = world();
        // Two active tasks keep the GPU busy until t=4 (one running, one
        // queued ahead by deadline); an arrival finishes there at t=6.
        let mut running = fresh(0, 0.0, 10.0);
        running.placement = Some(Placement {
            resource: ResourceId::new(1),
            remaining_fraction: 1.0,
            started: true,
            speed: 1.0,
        });
        // The queued task's deadline (4.9) is earlier than the arriving
        // task's, so EDF cannot slot the arrival ahead of it.
        let mut queued = fresh(1, 0.0, 4.9);
        queued.placement = Some(Placement {
            resource: ResourceId::new(1),
            remaining_fraction: 1.0,
            started: false,
            speed: 1.0,
        });
        let active = [running, queued];
        // Deadline 3: infeasible everywhere (GPU finish 6, CPU finish 4).
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving: fresh(2, 0.0, 3.0),
            predicted: &[],
        };
        let mut strict = StaticRm::new(&catalog);
        let mut spill = StaticRm::with_spill(&catalog);
        assert!(!strict.decide(&activation).admitted);
        assert!(!spill.decide(&activation).admitted);
        // Deadline 5: GPU still infeasible (finish 6) but the CPU works.
        let relaxed = Activation {
            arriving: fresh(3, 0.0, 5.0),
            ..activation
        };
        assert!(!strict.decide(&relaxed).admitted, "no spill, no admission");
        let d = spill.decide(&relaxed);
        assert!(d.admitted);
        assert_eq!(
            d.assignments.last().unwrap().resource,
            ResourceId::new(0),
            "spilled to the CPU"
        );
    }

    #[test]
    fn never_migrates_active_tasks() {
        let (platform, catalog) = world();
        let mut active = fresh(0, 0.0, 30.0);
        active.placement = Some(Placement {
            resource: ResourceId::new(0), // parked on the CPU
            remaining_fraction: 0.5,
            started: true,
            speed: 1.0,
        });
        let mut rm = StaticRm::with_spill(&catalog);
        let d = rm.decide(&Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &[active],
            arriving: fresh(1, 0.0, 10.0),
            predicted: &[],
        });
        assert!(d.admitted);
        let a0 = d.assignments.iter().find(|a| a.key == JobKey(0)).unwrap();
        assert_eq!(a0.resource, ResourceId::new(0), "active task stays put");
    }

    #[test]
    fn ignores_prediction() {
        let (platform, catalog) = world();
        let phantom = fresh(9, 1.0, 3.0);
        let mut rm = StaticRm::new(&catalog);
        let d = rm.decide(&Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &[],
            arriving: fresh(0, 0.0, 10.0),
            predicted: std::slice::from_ref(&phantom),
        });
        assert!(d.admitted);
        assert!(!d.used_prediction);
    }
}
