//! The exact optimizer: branch & bound over task→resource assignments.
//!
//! The paper formulates exact optimization as a MILP (Sec 4.2) whose
//! schedule is fully EDF-determined once the mapping is fixed. Enumerating
//! mappings with exact EDF-timeline feasibility therefore searches the same
//! space and finds the same optimum, at a fraction of the cost for the small
//! activation sizes this problem has (|S̄| tasks, N resources). The MILP
//! encoding itself lives in [`crate::MilpRm`] and is cross-validated against
//! this optimizer.
//!
//! Pruning: candidates are tried cheapest-energy first; a node is cut when
//! its accumulated energy plus the sum of every unassigned task's cheapest
//! candidate can no longer beat the incumbent.

use std::time::{Duration, Instant};

use rtrm_platform::{Energy, PlatformIndex};

use crate::activation::{Activation, Decision, PlanBuilder, ResourceManager, TimelinePool};
use crate::cost::{candidates, Candidate};
use crate::driver::{decide_with_fallback_tracked, Attempt, Plan};
use crate::heuristic::HeuristicRm;
use crate::prune::CandidateTable;
use crate::view::JobView;

/// Exact energy-optimal mapping via branch & bound (the paper's "MILP"
/// series, run without the hypothetical solver overhead).
#[derive(Debug, Clone)]
pub struct ExactRm {
    /// Maximum branch & bound nodes per activation. When exhausted, the best
    /// plan found so far (if any) is used — an "anytime" cut-off that keeps
    /// worst-case activations bounded. The default is high enough that the
    /// paper-scale experiments in this repository never hit it.
    pub node_budget: u64,
    /// Offer "abort and re-queue on the same GPU" (see
    /// [`candidates`](crate::candidates)). Enabled by default; Fig 1's
    /// scenario analysis requires it.
    pub gpu_restart_in_place: bool,
    /// Answer every feasibility probe with a memoized from-scratch engine
    /// run instead of the incremental timeline. Verdicts (and hence plans)
    /// are identical; this is the pre-incremental baseline, kept for
    /// benchmarks and differential tests.
    pub oracle_feasibility: bool,
    /// Anytime wall-clock budget in seconds *per fallback rung*. `None`
    /// (the default) never reads the clock, so results stay bit-identical
    /// run to run. With a budget, expiry keeps the best incumbent found so
    /// far; with no incumbent the activation degrades down the fallback
    /// ladder to the paper's heuristic as a floor.
    pub wall_clock_budget: Option<f64>,
    /// Rebuild, filter, and sort every job's candidate list per rung
    /// instead of filtering the shared pre-sorted
    /// [`CandidateTable`] rows. Decisions are identical; this is the
    /// pre-pruning baseline, kept for benchmarks and differential tests.
    pub unpruned_candidates: bool,
}

impl Default for ExactRm {
    fn default() -> Self {
        ExactRm {
            node_budget: 20_000_000,
            gpu_restart_in_place: true,
            oracle_feasibility: false,
            wall_clock_budget: None,
            unpruned_candidates: false,
        }
    }
}

impl ExactRm {
    /// Creates the exact optimizer with default limits.
    #[must_use]
    pub fn new() -> Self {
        ExactRm::default()
    }

    /// Creates an optimizer with an explicit node budget.
    #[must_use]
    pub fn with_node_budget(node_budget: u64) -> Self {
        ExactRm {
            node_budget,
            ..ExactRm::default()
        }
    }

    /// Creates an optimizer with an anytime wall-clock budget per rung (see
    /// [`ExactRm::wall_clock_budget`]).
    #[must_use]
    pub fn with_wall_clock(secs: f64) -> Self {
        ExactRm {
            wall_clock_budget: Some(secs),
            ..ExactRm::default()
        }
    }

    /// Materializes every job's deadline-filtered candidate list from the
    /// shared pre-sorted [`CandidateTable`] (filter-after-stable-sort equals
    /// the legacy sort-after-filter). The deadline bound `t_left` does not
    /// depend on the fallback rung, so this runs *once per decide* and each
    /// rung slices the prefix of `n_real + k` rows.
    fn rung_rows(
        &self,
        activation: &Activation<'_>,
        table: &mut CandidateTable,
        index: Option<&PlatformIndex>,
    ) -> Vec<Vec<Candidate>> {
        let now = activation.now;
        let (jobs, rows) = table.parts();
        (0..jobs.len())
            .map(|j| {
                let tleft = jobs[j].time_left(now);
                let mut cs = Vec::with_capacity(rows.row_len(j, index));
                rows.filtered_into(j, tleft, index, &mut cs);
                cs
            })
            .collect()
    }

    /// The pre-pruning rung solve: rebuilds, filters, and sorts every
    /// candidate list per rung. Kept verbatim as the differential/bench
    /// baseline.
    fn solve_unpruned(
        &self,
        activation: &Activation<'_>,
        num_phantoms: usize,
        pool: &mut TimelinePool,
    ) -> Attempt {
        let jobs: Vec<JobView> = activation
            .jobs_with_phantoms(num_phantoms)
            .copied()
            .collect();
        let n_real = activation.active.len() + 1;

        // Candidate lists, filtered by the per-task deadline bound
        // (constraint (2)) and sorted cheapest first for pruning.
        let cand: Vec<Vec<Candidate>> = jobs
            .iter()
            .map(|j| {
                let tleft = j.time_left(activation.now);
                let mut cs: Vec<Candidate> = candidates(
                    j,
                    activation.platform,
                    activation.catalog,
                    self.gpu_restart_in_place,
                )
                .into_iter()
                .filter(|c| c.exec <= tleft)
                .collect();
                cs.sort_by(|a, b| a.energy.cmp(&b.energy).then(a.resource.cmp(&b.resource)));
                cs
            })
            .collect();
        if cand.iter().any(Vec::is_empty) {
            return Attempt::default();
        }
        self.branch_and_bound(activation, num_phantoms, n_real, &jobs, &cand, pool)
    }

    /// The shared search: branching order, suffix minima, DFS, and plan
    /// extraction — identical for both candidate sources.
    fn branch_and_bound(
        &self,
        activation: &Activation<'_>,
        num_phantoms: usize,
        n_real: usize,
        jobs: &[JobView],
        cand: &[Vec<Candidate>],
        pool: &mut TimelinePool,
    ) -> Attempt {
        // Branching order: most constrained task first (fewest candidates),
        // then tightest deadline. `order[pos]` is the job index at depth pos.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            cand[a]
                .len()
                .cmp(&cand[b].len())
                .then(jobs[a].deadline.cmp(&jobs[b].deadline))
        });

        // Lower bound: cheapest candidate of every job still unassigned at
        // or below a depth.
        let mut suffix_min = vec![Energy::ZERO; jobs.len() + 1];
        for pos in (0..jobs.len()).rev() {
            suffix_min[pos] = suffix_min[pos + 1] + cand[order[pos]][0].energy;
        }

        let (nodes, best, timed_out) = {
            let mut search = Search {
                jobs,
                cand,
                order: &order,
                suffix_min: &suffix_min,
                plan: PlanBuilder::new(activation, &mut *pool),
                chosen: vec![None; jobs.len()],
                best: None,
                nodes: 0,
                budget: self.node_budget,
                deadline: self
                    .wall_clock_budget
                    .map(|secs| Instant::now() + Duration::from_secs_f64(secs.clamp(0.0, 1e9))),
                timed_out: false,
            };
            search.dfs(0, Energy::ZERO);
            (search.nodes, search.best, search.timed_out)
        };
        let Some((objective, chosen)) = best else {
            return Attempt {
                plan: None,
                timed_out,
            };
        };
        // Rebuild the winning plan to derive the reservation gates.
        let start_gates = if num_phantoms > 0 {
            let mut plan = PlanBuilder::new(activation, pool);
            for (job, c) in jobs.iter().zip(&chosen) {
                plan.place(job, &c.expect("complete assignment"));
            }
            let keys: Vec<_> = activation.predicted[..num_phantoms]
                .iter()
                .map(|p| p.key)
                .collect();
            plan.reservation_gates(&keys)
        } else {
            Vec::new()
        };
        Attempt {
            plan: Some(Plan {
                placements: jobs[..n_real]
                    .iter()
                    .enumerate()
                    .map(|(j, view)| (view.key, chosen[j].expect("complete assignment")))
                    .collect(),
                objective,
                nodes,
                start_gates,
            }),
            timed_out,
        }
    }
}

struct Search<'a, 'b> {
    jobs: &'a [JobView],
    cand: &'a [Vec<Candidate>],
    order: &'a [usize],
    suffix_min: &'a [Energy],
    plan: PlanBuilder<'b>,
    chosen: Vec<Option<Candidate>>,
    best: Option<(Energy, Vec<Option<Candidate>>)>,
    nodes: u64,
    budget: u64,
    deadline: Option<Instant>,
    timed_out: bool,
}

impl Search<'_, '_> {
    fn dfs(&mut self, pos: usize, cost: Energy) {
        if self.timed_out || self.nodes >= self.budget {
            return;
        }
        // Amortize the clock read: no syscall unless a budget is set, and
        // then only once every 1024 nodes.
        if self.nodes & 0x3ff == 0 && self.deadline.is_some_and(|at| Instant::now() >= at) {
            self.timed_out = true;
            return;
        }
        if pos == self.order.len() {
            // Deferred queues (future releases on non-preemptable
            // resources) are only validated here, on the complete plan.
            if self.plan.all_schedulable() && self.best.as_ref().is_none_or(|(b, _)| cost < *b) {
                self.best = Some((cost, self.chosen.clone()));
            }
            return;
        }
        let j = self.order[pos];
        for ci in 0..self.cand[j].len() {
            let c = self.cand[j][ci];
            // Candidates are energy-sorted: once the bound fails it fails
            // for every later candidate of this job.
            let bound = cost + c.energy + self.suffix_min[pos + 1];
            if self.best.as_ref().is_some_and(|(b, _)| bound >= *b) {
                break;
            }
            self.nodes += 1;
            if self.plan.fits_or_defer(&self.jobs[j], &c) {
                self.plan.place(&self.jobs[j], &c);
                self.chosen[j] = Some(c);
                self.dfs(pos + 1, cost + c.energy);
                self.chosen[j] = None;
                self.plan.unplace_last(c.resource);
                if self.timed_out {
                    return;
                }
            }
        }
    }
}

impl ResourceManager for ExactRm {
    fn name(&self) -> &str {
        "milp"
    }

    fn decide(&mut self, activation: &Activation<'_>) -> Decision {
        // The fallback ladder's rungs share the timelines and the
        // engine-fallback memo through the pool.
        let mut pool = TimelinePool::new();
        self.decide_with_pool(activation, &mut pool)
    }

    fn decide_with_pool(
        &mut self,
        activation: &Activation<'_>,
        pool: &mut TimelinePool,
    ) -> Decision {
        pool.set_oracle(self.oracle_feasibility);
        let oracle = self.oracle_feasibility;
        // Heuristic floor: only consulted when every branch & bound rung
        // failed and at least one failure was a wall-clock expiry. It
        // plans in a fresh pool because the ladder's pool is still
        // borrowed by the rung closure; both decide paths use the same
        // floor, so pruned and unpruned degrade identically.
        let floor = |act: &Activation<'_>| {
            let mut floor_pool = TimelinePool::new();
            floor_pool.set_oracle(oracle);
            HeuristicRm::new().solve_unpruned(act, 0, &mut floor_pool)
        };
        if self.unpruned_candidates {
            return decide_with_fallback_tracked(
                activation,
                |act, k| self.solve_unpruned(act, k, pool),
                floor,
            );
        }
        // Candidate rows built once per decide and shared across all rungs:
        // rung `k` slices the prefix of `n_real + k` deadline-filtered rows.
        let mut table = pool.take_table();
        let index = pool.take_index();
        table.rebuild(activation, true, self.gpu_restart_in_place, index.as_ref());
        let cand_all = self.rung_rows(activation, &mut table, index.as_ref());
        let n_real = activation.active.len() + 1;
        let decision = decide_with_fallback_tracked(
            activation,
            |act, k| {
                let n_jobs = n_real + k;
                let cand = &cand_all[..n_jobs];
                if cand.iter().any(Vec::is_empty) {
                    return Attempt::default();
                }
                self.branch_and_bound(act, k, n_real, &table.jobs()[..n_jobs], cand, pool)
            },
            floor,
        );
        pool.restore_table(table, index);
        decision
    }

    fn set_wall_clock(&mut self, budget: Option<f64>) {
        self.wall_clock_budget = budget;
    }
}
