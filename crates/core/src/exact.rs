//! The exact optimizer: branch & bound over task→resource assignments.
//!
//! The paper formulates exact optimization as a MILP (Sec 4.2) whose
//! schedule is fully EDF-determined once the mapping is fixed. Enumerating
//! mappings with exact EDF-timeline feasibility therefore searches the same
//! space and finds the same optimum, at a fraction of the cost for the small
//! activation sizes this problem has (|S̄| tasks, N resources). The MILP
//! encoding itself lives in [`crate::MilpRm`] and is cross-validated against
//! this optimizer.
//!
//! Pruning: candidates are tried cheapest-energy first; a node is cut when
//! its accumulated energy plus the sum of every unassigned task's cheapest
//! candidate can no longer beat the incumbent.

use std::time::{Duration, Instant};

use rtrm_platform::{Energy, PlatformIndex, Time};

use crate::activation::{Activation, Decision, PlanBuilder, ResourceManager, TimelinePool};
use crate::cost::{candidates, Candidate};
use crate::driver::{decide_with_fallback_tracked, Attempt, Plan};
use crate::heuristic::HeuristicRm;
use crate::prune::CandidateTable;
use crate::view::JobView;

/// Exact energy-optimal mapping via branch & bound (the paper's "MILP"
/// series, run without the hypothetical solver overhead).
#[derive(Debug, Clone)]
pub struct ExactRm {
    /// Maximum branch & bound nodes per activation. When exhausted, the best
    /// plan found so far (if any) is used — an "anytime" cut-off that keeps
    /// worst-case activations bounded. A warm-started rung whose injected
    /// incumbent was never replaced reruns cold on exhaustion, so the
    /// anytime result is the cold search's either way (at up to twice the
    /// node spend, which the reported [`Decision::nodes`] includes). The
    /// default is high enough that the paper-scale experiments in this
    /// repository never hit it.
    pub node_budget: u64,
    /// Offer "abort and re-queue on the same GPU" (see
    /// [`candidates`](crate::candidates)). Enabled by default; Fig 1's
    /// scenario analysis requires it.
    pub gpu_restart_in_place: bool,
    /// Answer every feasibility probe with a memoized from-scratch engine
    /// run instead of the incremental timeline. Verdicts (and hence plans)
    /// are identical; this is the pre-incremental baseline, kept for
    /// benchmarks and differential tests.
    pub oracle_feasibility: bool,
    /// Anytime wall-clock budget in seconds *per fallback rung*. `None`
    /// (the default) never reads the clock, so results stay bit-identical
    /// run to run. With a budget, expiry keeps the best incumbent found so
    /// far; with no incumbent the activation degrades down the fallback
    /// ladder to the paper's heuristic as a floor.
    pub wall_clock_budget: Option<f64>,
    /// Rebuild, filter, and sort every job's candidate list per rung
    /// instead of filtering the shared pre-sorted
    /// [`CandidateTable`] rows. Decisions are identical; this is the
    /// pre-pruning baseline, kept for benchmarks and differential tests.
    pub unpruned_candidates: bool,
    /// Seed every rung's branch & bound with the heuristic's plan as a
    /// starting incumbent (enabled by default). The injected incumbent
    /// prunes with the *exact* bound — no tolerance slack — and an equally
    /// good search-discovered leaf replaces it, so decisions are
    /// bit-identical to a cold search (`warmstart_differential.rs`); only
    /// the node count shrinks. If a binding [`node_budget`] cuts the search
    /// while the incumbent is still injected, the rung reruns cold and
    /// returns the cold anytime result — the seed never surfaces as the
    /// answer and admission never degrades below the cold baseline.
    /// Disable for the cold A/B baseline.
    ///
    /// [`node_budget`]: ExactRm::node_budget
    pub warm_start: bool,
    /// Drop candidates dominated within their (resource, pinned) group —
    /// strictly cheaper energy at no more execution time — before the
    /// search (enabled by default). A dominated candidate is in no optimal
    /// plan and the branching order is keyed on the pre-drop rows, so
    /// decisions are identical. Disable for the unpresolved A/B baseline.
    pub presolve: bool,
}

impl Default for ExactRm {
    fn default() -> Self {
        ExactRm {
            node_budget: 20_000_000,
            gpu_restart_in_place: true,
            oracle_feasibility: false,
            wall_clock_budget: None,
            unpruned_candidates: false,
            warm_start: true,
            presolve: true,
        }
    }
}

impl ExactRm {
    /// Creates the exact optimizer with default limits.
    #[must_use]
    pub fn new() -> Self {
        ExactRm::default()
    }

    /// Creates an optimizer with an explicit node budget.
    #[must_use]
    pub fn with_node_budget(node_budget: u64) -> Self {
        ExactRm {
            node_budget,
            ..ExactRm::default()
        }
    }

    /// Creates an optimizer with an anytime wall-clock budget per rung (see
    /// [`ExactRm::wall_clock_budget`]).
    #[must_use]
    pub fn with_wall_clock(secs: f64) -> Self {
        ExactRm {
            wall_clock_budget: Some(secs),
            ..ExactRm::default()
        }
    }

    /// Materializes every job's deadline-filtered candidate list from the
    /// shared pre-sorted [`CandidateTable`] (filter-after-stable-sort equals
    /// the legacy sort-after-filter). The deadline bound `t_left` does not
    /// depend on the fallback rung, so this runs *once per decide* and each
    /// rung slices the prefix of `n_real + k` rows.
    fn rung_rows(
        &self,
        activation: &Activation<'_>,
        table: &mut CandidateTable,
        index: Option<&PlatformIndex>,
    ) -> Vec<Vec<Candidate>> {
        let now = activation.now;
        let (jobs, rows) = table.parts();
        (0..jobs.len())
            .map(|j| {
                let tleft = jobs[j].time_left(now);
                let mut cs = Vec::with_capacity(rows.row_len(j, index));
                rows.filtered_into(j, tleft, index, &mut cs);
                cs
            })
            .collect()
    }

    /// The pre-pruning rung solve: rebuilds, filters, and sorts every
    /// candidate list per rung. Kept verbatim as the differential/bench
    /// baseline.
    fn solve_unpruned(
        &self,
        activation: &Activation<'_>,
        num_phantoms: usize,
        pool: &mut TimelinePool,
    ) -> Attempt {
        let jobs: Vec<JobView> = activation
            .jobs_with_phantoms(num_phantoms)
            .copied()
            .collect();
        let n_real = activation.active.len() + 1;

        // Candidate lists, filtered by the per-task deadline bound
        // (constraint (2)) and sorted cheapest first for pruning.
        let mut cand: Vec<Vec<Candidate>> = jobs
            .iter()
            .map(|j| {
                let tleft = j.time_left(activation.now);
                let mut cs: Vec<Candidate> = candidates(
                    j,
                    activation.platform,
                    activation.catalog,
                    self.gpu_restart_in_place,
                )
                .into_iter()
                .filter(|c| c.exec <= tleft)
                .collect();
                cs.sort_by(|a, b| a.energy.cmp(&b.energy).then(a.resource.cmp(&b.resource)));
                cs
            })
            .collect();
        if cand.iter().any(Vec::is_empty) {
            return Attempt::default();
        }
        // Branch-order keys are taken before the dominance drop so the
        // presolved and unpresolved searches walk the same tree shape.
        let keys = order_keys(&cand);
        if self.presolve {
            drop_dominated_rows(&mut cand, activation.platform.len());
        }
        self.branch_and_bound(activation, num_phantoms, n_real, &jobs, &cand, &keys, pool)
    }

    /// The shared search: branching order, suffix minima, DFS, and plan
    /// extraction — identical for both candidate sources. `keys` carries the
    /// per-job (candidate count, energy spread) branching keys, measured on
    /// the pre-dominance rows so presolved and unpresolved runs agree.
    #[allow(clippy::too_many_arguments)]
    fn branch_and_bound(
        &self,
        activation: &Activation<'_>,
        num_phantoms: usize,
        n_real: usize,
        jobs: &[JobView],
        cand: &[Vec<Candidate>],
        keys: &[(usize, Energy)],
        pool: &mut TimelinePool,
    ) -> Attempt {
        // Branching order, pseudocost-lite: most constrained task first
        // (fewest candidates), then largest energy spread (its assignment
        // moves the bound the most), then tightest deadline; the stable sort
        // pins remaining ties to job order so decisions stay deterministic.
        // `order[pos]` is the job index at depth pos.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            keys[a]
                .0
                .cmp(&keys[b].0)
                .then(keys[b].1.cmp(&keys[a].1))
                .then(jobs[a].deadline.cmp(&jobs[b].deadline))
        });

        // Lower bound: cheapest candidate of every job still unassigned at
        // or below a depth.
        let mut suffix_min = vec![Energy::ZERO; jobs.len() + 1];
        for pos in (0..jobs.len()).rev() {
            suffix_min[pos] = suffix_min[pos + 1] + cand[order[pos]][0].energy;
        }

        // Warm start: seed the incumbent with the heuristic's plan. Its cost
        // is re-summed in `order` position order — the same left-to-right
        // fold the DFS uses — so when the search reaches the same leaf it
        // computes the same float, and the `<=` replacement below fires.
        let mut warm: Option<(Energy, Vec<Option<Candidate>>)> = if self.warm_start {
            let mut warm_pool = TimelinePool::new();
            warm_pool.set_oracle(self.oracle_feasibility);
            HeuristicRm::new()
                .solve_unpruned_with_chosen(activation, num_phantoms, &mut warm_pool)
                .filter(|(_, chosen)| chosen.len() == jobs.len())
                .map(|(_, chosen)| {
                    let mut cost = Energy::ZERO;
                    for &j in &order {
                        cost += chosen[j].energy;
                    }
                    (cost, chosen.into_iter().map(Some).collect())
                })
        } else {
            None
        };

        // Nodes spent by a warm run that fell through to the cold rerun,
        // carried into the reported count so the extra spend is visible.
        let mut rerun_nodes: u64 = 0;
        let (nodes, best, timed_out) = loop {
            let injected = warm.is_some();
            let mut search = Search {
                jobs,
                cand,
                order: &order,
                suffix_min: &suffix_min,
                plan: PlanBuilder::new(activation, &mut *pool),
                chosen: vec![None; jobs.len()],
                best: warm.take(),
                injected,
                nodes: 0,
                budget: self.node_budget,
                deadline: self
                    .wall_clock_budget
                    .map(|secs| Instant::now() + Duration::from_secs_f64(secs.clamp(0.0, 1e9))),
                timed_out: false,
            };
            search.dfs(0, Energy::ZERO);
            // The injected incumbent never leaves the search: it only ever
            // prunes. Whenever it survives un-replaced — the tree was
            // exhausted without a leaf matching it (a float-fold corner in
            // the bound test) or the node budget cut the search off first —
            // rerun cold, so the rung returns exactly what a cold search
            // would: under a binding budget that is the cold anytime
            // incumbent (admission must not turn into rejection just
            // because the seed was good), and no plan only when even a cold
            // search finds none. The rerun keeps the full node budget
            // (shrinking it would change the cold result); the warm run's
            // nodes are added to the reported count so the up-to-2× spend
            // stays visible. Wall-clock expiry is the one exception — a
            // rerun would double the rung's latency — so it reports no plan
            // with `timed_out` set and the ladder degrades to its
            // heuristic floor.
            if search.injected {
                if search.timed_out {
                    search.best = None;
                } else {
                    rerun_nodes = search.nodes;
                    continue;
                }
            }
            break (rerun_nodes + search.nodes, search.best, search.timed_out);
        };
        let Some((objective, chosen)) = best else {
            return Attempt {
                plan: None,
                timed_out,
            };
        };
        // Rebuild the winning plan to derive the reservation gates.
        let start_gates = if num_phantoms > 0 {
            let mut plan = PlanBuilder::new(activation, pool);
            for (job, c) in jobs.iter().zip(&chosen) {
                plan.place(job, &c.expect("complete assignment"));
            }
            let keys: Vec<_> = activation.predicted[..num_phantoms]
                .iter()
                .map(|p| p.key)
                .collect();
            plan.reservation_gates(&keys)
        } else {
            Vec::new()
        };
        Attempt {
            plan: Some(Plan {
                placements: jobs[..n_real]
                    .iter()
                    .enumerate()
                    .map(|(j, view)| (view.key, chosen[j].expect("complete assignment")))
                    .collect(),
                objective,
                nodes,
                start_gates,
            }),
            timed_out,
        }
    }
}

/// Per-job branching keys: (candidate count, energy spread between the most
/// and least expensive candidate). Rows are `(energy, resource)`-sorted, so
/// the spread is `last − first`. Measured on the pre-dominance rows so the
/// branching order does not depend on whether presolve ran.
fn order_keys(rows: &[Vec<Candidate>]) -> Vec<(usize, Energy)> {
    rows.iter()
        .map(|row| {
            let spread = match (row.first(), row.last()) {
                (Some(first), Some(last)) => last.energy - first.energy,
                _ => Energy::ZERO,
            };
            (row.len(), spread)
        })
        .collect()
}

/// Drops every candidate dominated *within* its (resource, pinned) group:
/// `B` goes iff some `A` on the same resource with the same pinned flag has
/// strictly smaller energy and no larger execution time — any plan using `B`
/// swaps to `A` and strictly improves, so `B` is in no optimal plan and no
/// equal-cost optimum either (the energy inequality is strict). Cross-
/// resource dominance stays advisory (DESIGN.md §8): dropping across
/// resources would need the EDF feasibility swap argument, which only holds
/// on the same queue. Pinned and unpinned candidates never dominate each
/// other — pinned entries sort to the head of the EDF order, so the swap
/// argument breaks across the flag.
///
/// Rows are energy-sorted ascending, so dominators precede their victims;
/// runs of equal energy are folded into the frontier only after the whole
/// run is judged, keeping the energy comparison strict.
fn drop_dominated_rows(rows: &mut [Vec<Candidate>], num_resources: usize) {
    let mut frontier: Vec<Option<Time>> = vec![None; num_resources * 2];
    let mut dropped: Vec<bool> = Vec::new();
    for row in rows.iter_mut() {
        frontier.iter_mut().for_each(|slot| *slot = None);
        dropped.clear();
        dropped.resize(row.len(), false);
        let mut any = false;
        let mut i = 0;
        while i < row.len() {
            let mut j = i;
            while j < row.len() && row[j].energy == row[i].energy {
                j += 1;
            }
            for k in i..j {
                let slot = row[k].resource.index() * 2 + usize::from(row[k].pinned);
                if frontier[slot].is_some_and(|exec| exec <= row[k].exec) {
                    dropped[k] = true;
                    any = true;
                }
            }
            for c in &row[i..j] {
                let slot = c.resource.index() * 2 + usize::from(c.pinned);
                let exec = c.exec;
                frontier[slot] = Some(frontier[slot].map_or(exec, |e| e.min(exec)));
            }
            i = j;
        }
        if any {
            let mut k = 0;
            row.retain(|_| {
                let drop = dropped[k];
                k += 1;
                !drop
            });
        }
    }
}

struct Search<'a, 'b> {
    jobs: &'a [JobView],
    cand: &'a [Vec<Candidate>],
    order: &'a [usize],
    suffix_min: &'a [Energy],
    plan: PlanBuilder<'b>,
    chosen: Vec<Option<Candidate>>,
    best: Option<(Energy, Vec<Option<Candidate>>)>,
    /// `best` holds a warm-start incumbent the search did not discover
    /// itself. While set, pruning uses the strict bound (`>` instead of
    /// `>=`) so an equally good subtree is never cut, and an equally good
    /// leaf replaces the incumbent — after which the cold rules resume.
    injected: bool,
    nodes: u64,
    budget: u64,
    deadline: Option<Instant>,
    timed_out: bool,
}

impl Search<'_, '_> {
    fn dfs(&mut self, pos: usize, cost: Energy) {
        if self.timed_out || self.nodes >= self.budget {
            return;
        }
        // Amortize the clock read: no syscall unless a budget is set, and
        // then only once every 1024 nodes.
        if self.nodes & 0x3ff == 0 && self.deadline.is_some_and(|at| Instant::now() >= at) {
            self.timed_out = true;
            return;
        }
        if pos == self.order.len() {
            // Deferred queues (future releases on non-preemptable
            // resources) are only validated here, on the complete plan.
            let accept = self.plan.all_schedulable()
                && match self.best.as_ref() {
                    None => true,
                    // A leaf matching the injected incumbent's cost replaces
                    // it: the incumbent becomes search-discovered state.
                    Some((b, _)) if self.injected => cost <= *b,
                    Some((b, _)) => cost < *b,
                };
            if accept {
                self.best = Some((cost, self.chosen.clone()));
                self.injected = false;
            }
            return;
        }
        let j = self.order[pos];
        for ci in 0..self.cand[j].len() {
            let c = self.cand[j][ci];
            // Candidates are energy-sorted: once the bound fails it fails
            // for every later candidate of this job. Against an injected
            // incumbent the test is strict (`>`): its cost is feasible but
            // unproven, and cutting an equally cheap subtree could hide a
            // leaf the cold search would have returned.
            let bound = cost + c.energy + self.suffix_min[pos + 1];
            let prune = match self.best.as_ref() {
                None => false,
                Some((b, _)) if self.injected => bound > *b,
                Some((b, _)) => bound >= *b,
            };
            if prune {
                break;
            }
            self.nodes += 1;
            if self.plan.fits_or_defer(&self.jobs[j], &c) {
                self.plan.place(&self.jobs[j], &c);
                self.chosen[j] = Some(c);
                self.dfs(pos + 1, cost + c.energy);
                self.chosen[j] = None;
                self.plan.unplace_last(c.resource);
                if self.timed_out {
                    return;
                }
            }
        }
    }
}

impl ResourceManager for ExactRm {
    fn name(&self) -> &str {
        "milp"
    }

    fn decide(&mut self, activation: &Activation<'_>) -> Decision {
        // The fallback ladder's rungs share the timelines and the
        // engine-fallback memo through the pool.
        let mut pool = TimelinePool::new();
        self.decide_with_pool(activation, &mut pool)
    }

    fn decide_with_pool(
        &mut self,
        activation: &Activation<'_>,
        pool: &mut TimelinePool,
    ) -> Decision {
        pool.set_oracle(self.oracle_feasibility);
        let oracle = self.oracle_feasibility;
        // Heuristic floor: only consulted when every branch & bound rung
        // failed and at least one failure was a wall-clock expiry. It
        // plans in a fresh pool because the ladder's pool is still
        // borrowed by the rung closure; both decide paths use the same
        // floor, so pruned and unpruned degrade identically.
        let floor = |act: &Activation<'_>| {
            let mut floor_pool = TimelinePool::new();
            floor_pool.set_oracle(oracle);
            HeuristicRm::new().solve_unpruned(act, 0, &mut floor_pool)
        };
        if self.unpruned_candidates {
            return decide_with_fallback_tracked(
                activation,
                |act, k| self.solve_unpruned(act, k, pool),
                floor,
            );
        }
        // Candidate rows built once per decide and shared across all rungs:
        // rung `k` slices the prefix of `n_real + k` deadline-filtered rows.
        let mut table = pool.take_table();
        let index = pool.take_index();
        table.rebuild(activation, true, self.gpu_restart_in_place, index.as_ref());
        let mut cand_all = self.rung_rows(activation, &mut table, index.as_ref());
        // Branch-order keys are taken before the dominance drop so the
        // presolved and unpresolved searches walk the same tree shape.
        let keys_all = order_keys(&cand_all);
        if self.presolve {
            drop_dominated_rows(&mut cand_all, activation.platform.len());
        }
        let n_real = activation.active.len() + 1;
        let decision = decide_with_fallback_tracked(
            activation,
            |act, k| {
                let n_jobs = n_real + k;
                let cand = &cand_all[..n_jobs];
                if cand.iter().any(Vec::is_empty) {
                    return Attempt::default();
                }
                self.branch_and_bound(
                    act,
                    k,
                    n_real,
                    &table.jobs()[..n_jobs],
                    cand,
                    &keys_all[..n_jobs],
                    pool,
                )
            },
            floor,
        );
        pool.restore_table(table, index);
        decision
    }

    fn set_wall_clock(&mut self, budget: Option<f64>) {
        self.wall_clock_budget = budget;
    }
}
