//! The paper's fast mapping heuristic (Algorithm 1, Sec 4.3).
//!
//! Resources are knapsacks whose capacity is the planning window K̄ in
//! available processing time; tasks are items weighing `cpm_{j,i}`. The
//! desirability of placing task j on resource i is
//! `f_{j,i} = ep_{j,i} + em_{j,k,i} + M·(cpm_{j,i} > t_left_j)`. Tasks are
//! mapped in order of maximum *regret* (difference between their best and
//! second-best desirability); each task goes to its most desirable resource
//! that passes the EDF `IsSchedulable` test, falling back to the next best
//! until none remain.

use rtrm_platform::{Energy, ResourceId, Time};

use crate::activation::{Activation, Decision, PlanBuilder, ResourceManager, TimelinePool};
use crate::cost::{candidates, Candidate};
use crate::driver::{decide_with_fallback, Plan};
use crate::view::JobView;

/// The penalty weight `M` that makes deadline-infeasible placements
/// undesirable (Algorithm 1, line 6), derived from the largest candidate
/// energy of this activation. `M = 2·max_energy + 1` guarantees that every
/// penalized desirability (`>= M`) strictly exceeds every unpenalized one
/// (`<= max_energy < M`), so regret comparisons across tasks are never
/// distorted — a fixed constant would invert them as soon as per-job
/// energies approached it.
fn penalty_weight(cand: &[Vec<Candidate>]) -> f64 {
    let max_energy = cand
        .iter()
        .flatten()
        .map(|c| c.energy.value())
        .fold(0.0, f64::max);
    2.0 * max_energy + 1.0
}

/// The knapsack-based mapping heuristic of Algorithm 1.
///
/// # Examples
///
/// See the crate-level example in [`rtrm_core`](crate); `HeuristicRm` is a
/// drop-in [`ResourceManager`].
#[derive(Debug, Clone, Default)]
pub struct HeuristicRm {
    /// Disable the max-regret task ordering (lines 8–23) and map tasks in
    /// input order instead. Only useful for ablation studies; the paper's
    /// algorithm uses regret ordering.
    pub disable_regret_ordering: bool,
    /// Answer every feasibility probe with a memoized from-scratch engine
    /// run instead of the incremental timeline. Verdicts (and hence
    /// decisions) are identical; this is the pre-incremental baseline, kept
    /// for benchmarks and differential tests.
    pub oracle_feasibility: bool,
}

impl HeuristicRm {
    /// Creates the heuristic as described in the paper.
    #[must_use]
    pub fn new() -> Self {
        HeuristicRm::default()
    }

    /// Ablation variant: tasks are mapped in arrival order instead of
    /// max-regret order.
    #[must_use]
    pub fn without_regret_ordering() -> Self {
        HeuristicRm {
            disable_regret_ordering: true,
            ..HeuristicRm::default()
        }
    }

    pub(crate) fn solve(
        &self,
        activation: &Activation<'_>,
        num_phantoms: usize,
        pool: &mut TimelinePool,
    ) -> Option<Plan> {
        let jobs: Vec<JobView> = activation
            .jobs_with_phantoms(num_phantoms)
            .copied()
            .collect();
        let n_real = activation.active.len() + 1;

        // Desirability table: one candidate per (job, resource) — the
        // dominant "stay" option for a GPU-running job (see cost module).
        let cand: Vec<Vec<Candidate>> = jobs
            .iter()
            .map(|j| candidates(j, activation.platform, activation.catalog, false))
            .collect();
        let big_m = penalty_weight(&cand);
        let desirability = |job: &JobView, c: &Candidate| -> f64 {
            let tleft = job.time_left(activation.now);
            c.energy.value() + if c.exec > tleft { big_m } else { 0.0 }
        };

        // K̄: every resource starts with the full window as capacity. The
        // paper's t_left is measured from the activation instant
        // (`s_j + d_j − t`), so a future-released phantom's work counts
        // against the span up to its absolute deadline, not just the span
        // after its release.
        let window = jobs
            .iter()
            .map(|j| j.deadline - activation.now)
            .max()
            .unwrap_or(Time::ZERO);
        let mut capacity = vec![window; activation.platform.len()];

        let mut plan = PlanBuilder::new(activation, pool);
        let mut chosen: Vec<Option<Candidate>> = vec![None; jobs.len()];
        let mut unmapped: Vec<usize> = (0..jobs.len()).collect();
        let mut iterations: u64 = 0;

        while !unmapped.is_empty() {
            // F_j: resources whose remaining capacity admits the task. A
            // task whose F_j is empty can never be mapped later (capacities
            // only shrink), so the algorithm has no solution.
            let feasible = |j: usize| -> Vec<Candidate> {
                cand[j]
                    .iter()
                    .filter(|c| c.exec <= capacity[c.resource.index()])
                    .copied()
                    .collect()
            };

            // Select the task with the maximum regret d* (lines 8–23).
            let mut selected: Option<(usize, Vec<Candidate>)> = None;
            let mut best_regret = f64::NEG_INFINITY;
            for &j in &unmapped {
                let mut fj = feasible(j);
                if fj.is_empty() {
                    return None; // line 22: no solution
                }
                fj.sort_by(|a, b| {
                    desirability(&jobs[j], a)
                        .total_cmp(&desirability(&jobs[j], b))
                        .then(a.resource.cmp(&b.resource))
                });
                let regret = if fj.len() == 1 {
                    f64::INFINITY
                } else {
                    desirability(&jobs[j], &fj[1]) - desirability(&jobs[j], &fj[0])
                };
                if regret > best_regret {
                    best_regret = regret;
                    selected = Some((j, fj));
                }
                if self.disable_regret_ordering {
                    break; // ablation: take the first unmapped task
                }
            }
            let (j_star, mut options) = selected.expect("unmapped is non-empty");

            // Map to the most desirable schedulable resource (lines 24–34).
            let mut placed = false;
            while !options.is_empty() {
                iterations += 1;
                let c = options.remove(0);
                if plan.fits(&jobs[j_star], &c) {
                    plan.place(&jobs[j_star], &c);
                    capacity[c.resource.index()] -= c.exec;
                    chosen[j_star] = Some(c);
                    placed = true;
                    break;
                }
            }
            if !placed {
                return None; // lines 31–32: no more resources
            }
            unmapped.retain(|&j| j != j_star);
        }

        debug_assert!(plan.all_schedulable());
        let objective: Energy = chosen.iter().flatten().map(|c| c.energy).sum();
        let start_gates = if num_phantoms > 0 {
            let keys: Vec<_> = activation.predicted[..num_phantoms]
                .iter()
                .map(|p| p.key)
                .collect();
            plan.reservation_gates(&keys)
        } else {
            Vec::new()
        };
        Some(Plan {
            placements: jobs[..n_real]
                .iter()
                .zip(&chosen)
                .map(|(j, c)| (j.key, c.expect("all jobs mapped")))
                .collect(),
            objective,
            nodes: iterations,
            start_gates,
        })
    }
}

impl ResourceManager for HeuristicRm {
    fn name(&self) -> &str {
        if self.disable_regret_ordering {
            "heuristic-noregret"
        } else {
            "heuristic"
        }
    }

    fn decide(&mut self, activation: &Activation<'_>) -> Decision {
        // The fallback ladder's rungs share the timelines and the
        // engine-fallback memo through the pool.
        let mut pool = TimelinePool::new();
        self.decide_with_pool(activation, &mut pool)
    }

    fn decide_with_pool(
        &mut self,
        activation: &Activation<'_>,
        pool: &mut TimelinePool,
    ) -> Decision {
        pool.set_oracle(self.oracle_feasibility);
        decide_with_fallback(activation, |act, k| self.solve(act, k, pool))
    }
}

/// Re-exported for the ablation benchmark: the resource a fresh job would
/// most desire (minimum energy), ignoring schedulability.
#[must_use]
pub fn most_desirable_resource(job: &JobView, activation: &Activation<'_>) -> Option<ResourceId> {
    candidates(job, activation.platform, activation.catalog, false)
        .into_iter()
        .min_by(|a, b| a.energy.cmp(&b.energy).then(a.resource.cmp(&b.resource)))
        .map(|c| c.resource)
}
