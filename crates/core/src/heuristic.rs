//! The paper's fast mapping heuristic (Algorithm 1, Sec 4.3).
//!
//! Resources are knapsacks whose capacity is the planning window K̄ in
//! available processing time; tasks are items weighing `cpm_{j,i}`. The
//! desirability of placing task j on resource i is
//! `f_{j,i} = ep_{j,i} + em_{j,k,i} + M·(cpm_{j,i} > t_left_j)`. Tasks are
//! mapped in order of maximum *regret* (difference between their best and
//! second-best desirability); each task goes to its most desirable resource
//! that passes the EDF `IsSchedulable` test, falling back to the next best
//! until none remain.

use rtrm_platform::{Energy, PlatformIndex, ResourceId, Time};

use crate::activation::{Activation, Decision, PlanBuilder, ResourceManager, TimelinePool};
use crate::cost::{candidates, Candidate};
use crate::driver::{decide_with_fallback, Plan};
use crate::prune::CandidateTable;
use crate::view::JobView;

/// The penalty weight `M` that makes deadline-infeasible placements
/// undesirable (Algorithm 1, line 6), derived from the largest candidate
/// energy of this activation. `M = 2·max_energy + 1` guarantees that every
/// penalized desirability (`>= M`) strictly exceeds every unpenalized one
/// (`<= max_energy < M`), so regret comparisons across tasks are never
/// distorted — a fixed constant would invert them as soon as per-job
/// energies approached it.
///
/// This is the legacy per-rung computation; the pruned path reads the same
/// value from [`CandidateTable::penalty_weight`]'s prefix maxima (pinned
/// equal by `prefix_penalty_weight_matches_per_rung_flatten` below).
pub(crate) fn penalty_weight(cand: &[Vec<Candidate>]) -> f64 {
    let max_energy = cand
        .iter()
        .flatten()
        .map(|c| c.energy.value())
        .fold(0.0, f64::max);
    2.0 * max_energy + 1.0
}

/// The knapsack-based mapping heuristic of Algorithm 1.
///
/// # Examples
///
/// See the crate-level example in [`rtrm_core`](crate); `HeuristicRm` is a
/// drop-in [`ResourceManager`].
#[derive(Debug, Clone, Default)]
pub struct HeuristicRm {
    /// Disable the max-regret task ordering (lines 8–23) and map tasks in
    /// input order instead. Only useful for ablation studies; the paper's
    /// algorithm uses regret ordering.
    pub disable_regret_ordering: bool,
    /// Answer every feasibility probe with a memoized from-scratch engine
    /// run instead of the incremental timeline. Verdicts (and hence
    /// decisions) are identical; this is the pre-incremental baseline, kept
    /// for benchmarks and differential tests.
    pub oracle_feasibility: bool,
    /// Rebuild, re-filter, and re-sort every job's candidate list per rung
    /// and per mapping iteration instead of scanning the shared
    /// [`CandidateTable`]. Decisions are identical; this is the pre-pruning
    /// baseline, kept for benchmarks and differential tests (mirroring
    /// `oracle_feasibility`).
    pub unpruned_candidates: bool,
}

impl HeuristicRm {
    /// Creates the heuristic as described in the paper.
    #[must_use]
    pub fn new() -> Self {
        HeuristicRm::default()
    }

    /// Ablation variant: tasks are mapped in arrival order instead of
    /// max-regret order.
    #[must_use]
    pub fn without_regret_ordering() -> Self {
        HeuristicRm {
            disable_regret_ordering: true,
            ..HeuristicRm::default()
        }
    }

    /// One rung of the pruned solve: scans the shared [`CandidateTable`]
    /// instead of building per-rung candidate lists. Decision-identical to
    /// [`solve_unpruned`](HeuristicRm::solve_unpruned) by construction:
    /// per-iteration capacity filters commute with the row's stable
    /// `(energy, resource)` sort, and the ranked scan's two-pass partition
    /// *is* the desirability order (see `prune` module docs).
    pub(crate) fn solve_with_table(
        &self,
        activation: &Activation<'_>,
        num_phantoms: usize,
        table: &mut CandidateTable,
        index: Option<&PlatformIndex>,
        pool: &mut TimelinePool,
    ) -> Option<Plan> {
        let n_real = activation.active.len() + 1;
        let n_jobs = n_real + num_phantoms;
        let now = activation.now;
        let big_m = table.penalty_weight(n_jobs);
        let (jobs_all, mut rows) = table.parts();
        let jobs = &jobs_all[..n_jobs];

        // K̄: every resource starts with the full window as capacity (same
        // per-rung window as the unpruned path).
        let window = jobs
            .iter()
            .map(|j| j.deadline - now)
            .max()
            .unwrap_or(Time::ZERO);
        let mut capacity = vec![window; activation.platform.len()];

        let mut plan = PlanBuilder::new(activation, pool);
        let mut chosen: Vec<Option<Candidate>> = vec![None; n_jobs];
        let mut unmapped: Vec<usize> = (0..n_jobs).collect();
        let mut iterations: u64 = 0;

        while !unmapped.is_empty() {
            // Select the task with the maximum regret d* (lines 8–23):
            // regret needs only the best and second-best capacity-feasible
            // desirabilities, i.e. the first two hits of a ranked scan.
            let mut selected: Option<usize> = None;
            let mut best_regret = f64::NEG_INFINITY;
            for &j in &unmapped {
                let tleft = jobs[j].time_left(now);
                let mut scan = rows.ranked(j, tleft, index);
                let mut first: Option<f64> = None;
                let mut second: Option<f64> = None;
                while let Some((c, penalized)) = scan.next() {
                    if c.exec > capacity[c.resource.index()] {
                        continue;
                    }
                    let des = c.energy.value() + if penalized { big_m } else { 0.0 };
                    if first.is_none() {
                        first = Some(des);
                    } else {
                        second = Some(des);
                        break;
                    }
                }
                let Some(d0) = first else {
                    return None; // line 22: F_j empty, no solution
                };
                let regret = second.map_or(f64::INFINITY, |d1| d1 - d0);
                if regret > best_regret {
                    best_regret = regret;
                    selected = Some(j);
                }
                if self.disable_regret_ordering {
                    break; // ablation: take the first unmapped task
                }
            }
            let j_star = selected.expect("unmapped is non-empty");

            // Map to the most desirable schedulable resource (lines 24–34);
            // capacities are unchanged since selection, so this scan yields
            // exactly the candidate sequence selection ranked.
            let tleft = jobs[j_star].time_left(now);
            let mut placed = false;
            let mut scan = rows.ranked(j_star, tleft, index);
            while let Some((c, _)) = scan.next() {
                if c.exec > capacity[c.resource.index()] {
                    continue;
                }
                iterations += 1;
                if plan.fits(&jobs[j_star], &c) {
                    plan.place(&jobs[j_star], &c);
                    capacity[c.resource.index()] -= c.exec;
                    chosen[j_star] = Some(c);
                    placed = true;
                    break;
                }
            }
            if !placed {
                return None; // lines 31–32: no more resources
            }
            unmapped.retain(|&j| j != j_star);
        }

        debug_assert!(plan.all_schedulable());
        let objective: Energy = chosen.iter().flatten().map(|c| c.energy).sum();
        let start_gates = if num_phantoms > 0 {
            let keys: Vec<_> = activation.predicted[..num_phantoms]
                .iter()
                .map(|p| p.key)
                .collect();
            plan.reservation_gates(&keys)
        } else {
            Vec::new()
        };
        Some(Plan {
            placements: jobs[..n_real]
                .iter()
                .zip(&chosen)
                .map(|(j, c)| (j.key, c.expect("all jobs mapped")))
                .collect(),
            objective,
            nodes: iterations,
            start_gates,
        })
    }

    /// The pre-pruning rung solve: rebuilds every candidate list per rung
    /// and re-filters/sorts per mapping iteration. Kept verbatim as the
    /// differential/bench baseline and as the ladder floor.
    pub(crate) fn solve_unpruned(
        &self,
        activation: &Activation<'_>,
        num_phantoms: usize,
        pool: &mut TimelinePool,
    ) -> Option<Plan> {
        self.solve_unpruned_with_chosen(activation, num_phantoms, pool)
            .map(|(plan, _)| plan)
    }

    /// [`solve_unpruned`](HeuristicRm::solve_unpruned) plus the full
    /// job-indexed chosen-candidate vector — *including* the phantom rows
    /// that [`Plan::placements`] omits. The exact managers seed their
    /// branch & bound incumbent from it: re-summing the chosen energies in
    /// the search's own branching order reproduces the exact leaf cost the
    /// search would compute for this assignment, which the bit-identity
    /// protocol of the injected incumbent relies on.
    pub(crate) fn solve_unpruned_with_chosen(
        &self,
        activation: &Activation<'_>,
        num_phantoms: usize,
        pool: &mut TimelinePool,
    ) -> Option<(Plan, Vec<Candidate>)> {
        let jobs: Vec<JobView> = activation
            .jobs_with_phantoms(num_phantoms)
            .copied()
            .collect();
        let n_real = activation.active.len() + 1;

        // Desirability table: one candidate per (job, resource) — the
        // dominant "stay" option for a GPU-running job (see cost module).
        let cand: Vec<Vec<Candidate>> = jobs
            .iter()
            .map(|j| candidates(j, activation.platform, activation.catalog, false))
            .collect();
        let big_m = penalty_weight(&cand);
        let desirability = |job: &JobView, c: &Candidate| -> f64 {
            let tleft = job.time_left(activation.now);
            c.energy.value() + if c.exec > tleft { big_m } else { 0.0 }
        };

        // K̄: every resource starts with the full window as capacity. The
        // paper's t_left is measured from the activation instant
        // (`s_j + d_j − t`), so a future-released phantom's work counts
        // against the span up to its absolute deadline, not just the span
        // after its release.
        let window = jobs
            .iter()
            .map(|j| j.deadline - activation.now)
            .max()
            .unwrap_or(Time::ZERO);
        let mut capacity = vec![window; activation.platform.len()];

        let mut plan = PlanBuilder::new(activation, pool);
        let mut chosen: Vec<Option<Candidate>> = vec![None; jobs.len()];
        let mut unmapped: Vec<usize> = (0..jobs.len()).collect();
        let mut iterations: u64 = 0;

        while !unmapped.is_empty() {
            // F_j: resources whose remaining capacity admits the task. A
            // task whose F_j is empty can never be mapped later (capacities
            // only shrink), so the algorithm has no solution.
            let feasible = |j: usize| -> Vec<Candidate> {
                cand[j]
                    .iter()
                    .filter(|c| c.exec <= capacity[c.resource.index()])
                    .copied()
                    .collect()
            };

            // Select the task with the maximum regret d* (lines 8–23).
            let mut selected: Option<(usize, Vec<Candidate>)> = None;
            let mut best_regret = f64::NEG_INFINITY;
            for &j in &unmapped {
                let mut fj = feasible(j);
                if fj.is_empty() {
                    return None; // line 22: no solution
                }
                fj.sort_by(|a, b| {
                    desirability(&jobs[j], a)
                        .total_cmp(&desirability(&jobs[j], b))
                        .then(a.resource.cmp(&b.resource))
                });
                let regret = if fj.len() == 1 {
                    f64::INFINITY
                } else {
                    desirability(&jobs[j], &fj[1]) - desirability(&jobs[j], &fj[0])
                };
                if regret > best_regret {
                    best_regret = regret;
                    selected = Some((j, fj));
                }
                if self.disable_regret_ordering {
                    break; // ablation: take the first unmapped task
                }
            }
            let (j_star, mut options) = selected.expect("unmapped is non-empty");

            // Map to the most desirable schedulable resource (lines 24–34).
            let mut placed = false;
            while !options.is_empty() {
                iterations += 1;
                let c = options.remove(0);
                if plan.fits(&jobs[j_star], &c) {
                    plan.place(&jobs[j_star], &c);
                    capacity[c.resource.index()] -= c.exec;
                    chosen[j_star] = Some(c);
                    placed = true;
                    break;
                }
            }
            if !placed {
                return None; // lines 31–32: no more resources
            }
            unmapped.retain(|&j| j != j_star);
        }

        debug_assert!(plan.all_schedulable());
        let objective: Energy = chosen.iter().flatten().map(|c| c.energy).sum();
        let start_gates = if num_phantoms > 0 {
            let keys: Vec<_> = activation.predicted[..num_phantoms]
                .iter()
                .map(|p| p.key)
                .collect();
            plan.reservation_gates(&keys)
        } else {
            Vec::new()
        };
        let full: Vec<Candidate> = chosen.iter().map(|c| c.expect("all jobs mapped")).collect();
        Some((
            Plan {
                placements: jobs[..n_real]
                    .iter()
                    .zip(&full)
                    .map(|(j, c)| (j.key, *c))
                    .collect(),
                objective,
                nodes: iterations,
                start_gates,
            },
            full,
        ))
    }
}

impl ResourceManager for HeuristicRm {
    fn name(&self) -> &str {
        if self.disable_regret_ordering {
            "heuristic-noregret"
        } else {
            "heuristic"
        }
    }

    fn decide(&mut self, activation: &Activation<'_>) -> Decision {
        // The fallback ladder's rungs share the timelines and the
        // engine-fallback memo through the pool.
        let mut pool = TimelinePool::new();
        self.decide_with_pool(activation, &mut pool)
    }

    fn decide_with_pool(
        &mut self,
        activation: &Activation<'_>,
        pool: &mut TimelinePool,
    ) -> Decision {
        pool.set_oracle(self.oracle_feasibility);
        if self.unpruned_candidates {
            return decide_with_fallback(activation, |act, k| self.solve_unpruned(act, k, pool));
        }
        // Build the candidate table once — all rungs of the fallback ladder
        // share it (rung k reads the prefix of n_real + k rows). Table and
        // index are moved out of the pool so the rung closure can borrow the
        // pool's timelines independently.
        let mut table = pool.take_table();
        let index = pool.take_index();
        table.rebuild(activation, true, false, index.as_ref());
        let decision = decide_with_fallback(activation, |act, k| {
            self.solve_with_table(act, k, &mut table, index.as_ref(), pool)
        });
        pool.restore_table(table, index);
        decision
    }
}

/// Re-exported for the ablation benchmark: the resource a fresh job would
/// most desire (minimum energy), ignoring schedulability.
#[must_use]
pub fn most_desirable_resource(job: &JobView, activation: &Activation<'_>) -> Option<ResourceId> {
    candidates(job, activation.platform, activation.catalog, false)
        .into_iter()
        .min_by(|a, b| a.energy.cmp(&b.energy).then(a.resource.cmp(&b.resource)))
        .map(|c| c.resource)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::Placement;
    use rtrm_platform::{Platform, PlatformIndex, TaskCatalog, TaskType, TaskTypeId};
    use rtrm_sched::JobKey;

    /// DVFS CPU + plain CPU + GPU, two types with very different energies so
    /// the per-rung maximum actually moves as phantoms join the rung.
    fn world() -> (Platform, TaskCatalog) {
        let mut b = Platform::builder();
        b.cpu_with_dvfs("c0", &[0.5, 1.0, 2.0]).cpus(1).gpu("g");
        let platform = b.build();
        let ids: Vec<_> = platform.ids().collect();
        let small = TaskType::builder(0, &platform)
            .profile(ids[0], Time::new(8.0), Energy::new(4.0))
            .profile(ids[1], Time::new(6.0), Energy::new(5.0))
            .profile(ids[2], Time::new(5.0), Energy::new(2.0))
            .uniform_migration(Time::new(1.0), Energy::new(0.5))
            .build();
        let big = TaskType::builder(1, &platform)
            .profile(ids[0], Time::new(10.0), Energy::new(30.0))
            .profile(ids[1], Time::new(9.0), Energy::new(40.0))
            .uniform_migration(Time::new(1.0), Energy::new(0.5))
            .build();
        (platform, TaskCatalog::new(vec![small, big]))
    }

    /// S2 pin: the table's prefix-maximum penalty weight equals the legacy
    /// per-rung full-table flatten for *every* rung of the ladder — with a
    /// placed active job (owned row) and phantoms of a high-energy type that
    /// raise the maximum only on the deeper rungs.
    #[test]
    fn prefix_penalty_weight_matches_per_rung_flatten() {
        let (platform, catalog) = world();
        let ids: Vec<_> = platform.ids().collect();
        let mut active = JobView::fresh(JobKey(0), TaskTypeId::new(0), Time::ZERO, Time::new(25.0));
        active.placement = Some(Placement::new(ids[1], 0.6, true));
        let active = [active];
        let arriving = JobView::fresh(JobKey(1), TaskTypeId::new(0), Time::ZERO, Time::new(20.0));
        let predicted = [
            JobView::fresh(
                JobKey(2),
                TaskTypeId::new(1),
                Time::new(4.0),
                Time::new(30.0),
            ),
            JobView::fresh(
                JobKey(3),
                TaskTypeId::new(1),
                Time::new(8.0),
                Time::new(40.0),
            ),
        ];
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &active,
            arriving,
            predicted: &predicted,
        };
        let n_real = activation.active.len() + 1;

        for (index, label) in [
            (None, "owned rows"),
            (
                Some(PlatformIndex::build(&platform, &catalog)),
                "indexed rows",
            ),
        ] {
            let mut table = CandidateTable::new();
            table.rebuild(&activation, true, false, index.as_ref());
            for k in 0..=predicted.len() {
                let legacy: Vec<Vec<Candidate>> = activation
                    .jobs_with_phantoms(k)
                    .map(|j| candidates(j, &platform, &catalog, false))
                    .collect();
                assert_eq!(
                    table.penalty_weight(n_real + k),
                    penalty_weight(&legacy),
                    "{label}, rung with {k} phantoms"
                );
            }
        }
    }

    /// The pruned default and the `unpruned_candidates` baseline agree on a
    /// multi-phantom activation (the proptest suite covers this at scale;
    /// this is the fast in-crate smoke check).
    #[test]
    fn pruned_and_unpruned_decide_identically_here() {
        let (platform, catalog) = world();
        let arriving = JobView::fresh(JobKey(1), TaskTypeId::new(0), Time::ZERO, Time::new(20.0));
        let predicted = [JobView::fresh(
            JobKey(2),
            TaskTypeId::new(1),
            Time::new(4.0),
            Time::new(30.0),
        )];
        let activation = Activation {
            now: Time::ZERO,
            platform: &platform,
            catalog: &catalog,
            active: &[],
            arriving,
            predicted: &predicted,
        };
        let mut pruned_rm = HeuristicRm::new();
        let pruned = pruned_rm.decide(&activation);
        let mut unpruned_rm = HeuristicRm {
            unpruned_candidates: true,
            ..HeuristicRm::default()
        };
        let unpruned = unpruned_rm.decide(&activation);
        assert_eq!(pruned, unpruned);
        assert!(pruned.admitted);
    }
}
