//! Offline drop-in subset of `criterion`.
//!
//! Implements the API surface the workspace benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — over a simple wall-clock
//! harness: each benchmark is warmed up briefly, then timed over
//! `sample_size` batches and reported as mean ns/iter with min/max across
//! batches. No statistics engine, plots, or baseline files; output is one
//! line per benchmark on stdout, which is all the JSON emitters in
//! `crates/bench` consume.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
/// Minimum wall-clock time one measured batch should take; iteration counts
/// are scaled so short benchmarks are not drowned in timer noise.
const TARGET_BATCH: Duration = Duration::from_millis(20);

/// Top-level harness handle (a subset of upstream's `Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of measured batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing the parent's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark named `{group}/{id}`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.criterion.sample_size, &mut f);
        self
    }

    /// Runs a benchmark that borrows a setup value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("heuristic", 64)` displays as `heuristic/64`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations per measured batch (set by the harness after calibration).
    iters_per_batch: u64,
    /// Collected per-batch mean ns/iter.
    samples: Vec<f64>,
    /// True during the calibration pass, which runs exactly one iteration.
    calibrating: bool,
    calibration_ns: f64,
}

impl Bencher {
    /// Times `routine`, recording one sample batch (or calibrating).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.calibrating {
            let start = Instant::now();
            black_box(routine());
            self.calibration_ns = start.elapsed().as_nanos() as f64;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_batch {
            black_box(routine());
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        self.samples.push(elapsed / self.iters_per_batch as f64);
    }
}

fn run_benchmark(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration: run one iteration to estimate cost, then pick a batch
    // size that makes each measured batch take ~TARGET_BATCH.
    let mut bencher = Bencher {
        iters_per_batch: 1,
        samples: Vec::with_capacity(sample_size),
        calibrating: true,
        calibration_ns: 0.0,
    };
    f(&mut bencher);
    let per_iter = bencher.calibration_ns.max(1.0);
    let iters = (TARGET_BATCH.as_nanos() as f64 / per_iter).clamp(1.0, 1e7) as u64;

    // Warmup.
    bencher.calibrating = false;
    bencher.iters_per_batch = iters;
    let warmup_start = Instant::now();
    while warmup_start.elapsed() < WARMUP {
        f(&mut bencher);
    }
    bencher.samples.clear();

    // Measurement.
    while bencher.samples.len() < sample_size {
        f(&mut bencher);
    }
    let samples = &bencher.samples;
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "bench: {name:<50} {:>12.1} ns/iter (min {:.1}, max {:.1}, {} samples x {} iters)",
        mean,
        min,
        max,
        samples.len(),
        iters
    );
}

/// Declares a benchmark group function, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
