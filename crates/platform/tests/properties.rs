//! Property-based tests for the system model.

use proptest::prelude::*;

use rtrm_platform::{
    Energy, Platform, Request, RequestId, TaskCatalog, TaskType, TaskTypeId, Time, Trace,
};

fn any_platform() -> impl Strategy<Value = Platform> {
    (1usize..6, 0usize..3).prop_map(|(cpus, gpus)| {
        let mut b = Platform::builder();
        b.cpus(cpus);
        for g in 0..gpus {
            b.gpu(format!("gpu{g}"));
        }
        b.build()
    })
}

proptest! {
    /// Ids are dense, kinds partition the platform, and `ids_of_kind`
    /// covers exactly the platform.
    #[test]
    fn platform_structure(platform in any_platform()) {
        let ids: Vec<usize> = platform.ids().map(|r| r.index()).collect();
        prop_assert_eq!(ids, (0..platform.len()).collect::<Vec<_>>());
        let cpus = platform.ids_of_kind(rtrm_platform::ResourceKind::Cpu).count();
        let gpus = platform.ids_of_kind(rtrm_platform::ResourceKind::Gpu).count();
        prop_assert_eq!(cpus + gpus, platform.len());
    }

    /// Aggregates are consistent: min ≤ mean ≤ max over profiles.
    #[test]
    fn task_type_aggregates(
        wcets in prop::collection::vec(0.1f64..100.0, 1..6),
        energies in prop::collection::vec(0.1f64..100.0, 1..6),
    ) {
        let n = wcets.len().min(energies.len());
        let platform = {
            let mut b = Platform::builder();
            b.cpus(n);
            b.build()
        };
        let mut builder = TaskType::builder(0, &platform);
        for (i, r) in platform.ids().enumerate() {
            builder.profile(r, Time::new(wcets[i]), Energy::new(energies[i]));
        }
        let ty = builder.build();
        let min = ty.min_wcet().value();
        let mean = ty.mean_wcet().value();
        let max = wcets[..n].iter().copied().fold(0.0f64, f64::max);
        prop_assert!(min <= mean + 1e-12 && mean <= max + 1e-12);
        prop_assert!(ty.min_energy().value() <= ty.mean_energy().value() + 1e-12);
    }

    /// Trace accessors agree with construction order.
    #[test]
    fn trace_navigation(gaps in prop::collection::vec(0.0f64..5.0, 1..30)) {
        let mut t = 0.0;
        let requests: Vec<Request> = gaps
            .iter()
            .enumerate()
            .map(|(i, g)| {
                if i > 0 {
                    t += g;
                }
                Request {
                    id: RequestId::new(i),
                    arrival: Time::new(t),
                    task_type: TaskTypeId::new(i % 3),
                    deadline: Time::new(1.0),
                }
            })
            .collect();
        let trace = Trace::new(requests.clone());
        for (i, r) in trace.iter().enumerate() {
            prop_assert_eq!(r, &requests[i]);
            match trace.next_after(r.id) {
                Some(next) => prop_assert_eq!(next.id.index(), i + 1),
                None => prop_assert_eq!(i, requests.len() - 1),
            }
        }
        if requests.len() >= 2 {
            let mean = trace.mean_interarrival().expect("two or more requests");
            let span = requests.last().expect("non-empty").arrival.value();
            prop_assert!((mean.value() - span / (requests.len() - 1) as f64).abs() < 1e-12);
        }
    }

    /// Time/Energy arithmetic keeps ordering: a + b ≥ max(a, b) for
    /// non-negative quantities, and ratios invert multiplication.
    #[test]
    fn quantity_arithmetic(a in 0.0f64..1e6, b in 0.0f64..1e6, k in 0.001f64..1e3) {
        let ta = Time::new(a);
        let tb = Time::new(b);
        prop_assert!(ta + tb >= ta.max(tb));
        prop_assert!((ta * k / k).value() - a < 1e-6 * a.max(1.0));
        if b > 0.0 {
            let ratio = ta / tb;
            prop_assert!((tb * ratio).value() - a <= 1e-6 * a.max(1.0));
        }
        let ea = Energy::new(a);
        prop_assert_eq!((ea * 2.0 - ea).value(), a);
    }

    /// Catalog round-trips through FromIterator and preserves id lookup.
    #[test]
    fn catalog_from_iterator(count in 1usize..20) {
        let platform = Platform::builder().cpus(1).build();
        let cat: TaskCatalog = (0..count)
            .map(|i| {
                TaskType::builder(i, &platform)
                    .profile(
                        platform.ids().next().expect("one cpu"),
                        Time::new(1.0 + i as f64),
                        Energy::new(1.0),
                    )
                    .build()
            })
            .collect();
        prop_assert_eq!(cat.len(), count);
        for i in 0..count {
            let ty = cat.task_type(TaskTypeId::new(i));
            prop_assert_eq!(ty.id().index(), i);
        }
    }
}
