//! Scalar quantity newtypes: [`Time`] and [`Energy`].
//!
//! The paper works in milliseconds and joules, but nothing in the model
//! depends on the concrete unit; both types wrap a finite `f64` and provide
//! the arithmetic the scheduler and the energy accounting need. A total order
//! (via [`f64::total_cmp`]) makes them usable as EDF keys.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a new quantity from a raw value.
            ///
            /// # Panics
            ///
            /// Panics if `value` is NaN; infinite values are allowed and act
            /// as "never"/"unbounded" sentinels.
            #[must_use]
            pub fn new(value: f64) -> Self {
                assert!(!value.is_nan(), concat!(stringify!($name), " must not be NaN"));
                $name(value)
            }

            /// Returns the raw value.
            #[must_use]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                if self >= other { self } else { other }
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                if self <= other { self } else { other }
            }

            /// Clamps negative values (e.g. tiny numerical residue) to zero.
            #[must_use]
            pub fn clamp_non_negative(self) -> Self {
                if self.0 < 0.0 { Self::ZERO } else { self }
            }

            /// Returns `true` if the value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Positive infinity; used as an "unschedulable / never" sentinel.
            #[must_use]
            pub fn infinity() -> Self {
                $name(f64::INFINITY)
            }
        }

        impl Eq for $name {}

        #[allow(clippy::derive_ord_xor_partial_ord)]
        impl Ord for $name {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: Self) -> Self {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: Self) -> Self {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> Self {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> Self {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two quantities of the same kind is dimensionless.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> Self {
                $name(-self.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold($name::ZERO, Add::add)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                $name::new(value)
            }
        }
    };
}

quantity!(
    /// A point in (or span of) simulated time.
    ///
    /// The paper's evaluation uses milliseconds; the library is unit-agnostic.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtrm_platform::Time;
    ///
    /// let deadline = Time::new(8.0);
    /// let now = Time::new(3.0);
    /// assert_eq!((deadline - now).value(), 5.0);
    /// ```
    Time,
    "t"
);

quantity!(
    /// An amount of energy.
    ///
    /// The paper's evaluation uses joules; the library is unit-agnostic.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtrm_platform::Energy;
    ///
    /// let total: Energy = [Energy::new(2.0), Energy::new(1.5)].into_iter().sum();
    /// assert_eq!(total.value(), 3.5);
    /// ```
    Energy,
    "E"
);

/// Tolerance used when comparing times for feasibility: a job finishing
/// within `TIME_EPSILON` past its deadline is considered on time, absorbing
/// floating-point accumulation error in long timelines.
pub const TIME_EPSILON: f64 = 1e-9;

impl Time {
    /// Returns `true` if `self` is no later than `deadline`, within
    /// [`TIME_EPSILON`] tolerance.
    #[must_use]
    pub fn meets(self, deadline: Time) -> bool {
        self.0 <= deadline.0 + TIME_EPSILON
    }

    /// Returns `true` if a job released at `self` counts as released (ready
    /// to execute) at instant `now`, within [`TIME_EPSILON`] tolerance.
    ///
    /// This is *the* future-release predicate of the whole stack: the EDF
    /// engine's ready/pending split, `EdfTimeline`'s dense/future
    /// classification, and the managers' defer logic all key on it, so a
    /// release within epsilon of the activation instant is treated
    /// identically everywhere.
    #[must_use]
    pub fn released_by(self, now: Time) -> bool {
        self.0 <= now.0 + TIME_EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Time::new(4.0);
        let b = Time::new(1.5);
        assert_eq!((a + b).value(), 5.5);
        assert_eq!((a - b).value(), 2.5);
        assert_eq!((a * 2.0).value(), 8.0);
        assert_eq!((a / 2.0).value(), 2.0);
        assert_eq!(a / b, 4.0 / 1.5);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [Time::new(3.0), Time::new(-1.0), Time::infinity()];
        v.sort();
        assert_eq!(v[0], Time::new(-1.0));
        assert_eq!(v[2], Time::infinity());
    }

    #[test]
    fn min_max_clamp() {
        assert_eq!(Time::new(2.0).max(Time::new(5.0)), Time::new(5.0));
        assert_eq!(Time::new(2.0).min(Time::new(5.0)), Time::new(2.0));
        assert_eq!(Time::new(-1e-12).clamp_non_negative(), Time::ZERO);
    }

    #[test]
    fn meets_tolerates_epsilon() {
        let d = Time::new(10.0);
        assert!(Time::new(10.0 + 1e-12).meets(d));
        assert!(!Time::new(10.1).meets(d));
    }

    #[test]
    fn released_by_tolerates_epsilon() {
        let now = Time::new(10.0);
        assert!(Time::new(9.0).released_by(now));
        assert!(Time::new(10.0).released_by(now));
        assert!(Time::new(10.0 + TIME_EPSILON / 2.0).released_by(now));
        assert!(!Time::new(10.0 + 2.0 * TIME_EPSILON).released_by(now));
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_rejected() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    fn sum_of_energies() {
        let e: Energy = (1..=4).map(|i| Energy::new(f64::from(i))).sum();
        assert_eq!(e.value(), 10.0);
    }

    #[test]
    fn display_contains_unit() {
        assert!(format!("{}", Time::new(1.0)).contains('t'));
        assert!(format!("{}", Energy::new(1.0)).contains('E'));
    }
}
