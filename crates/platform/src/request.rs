//! Requests and request traces (the platform's fluctuating workload).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{TaskTypeId, Time};

/// Identifier of one request within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id from its trace index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        RequestId(index as u64)
    }

    /// Returns the trace index.
    #[must_use]
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("request index fits in usize")
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// One arriving request: it triggers a task of `task_type` at `arrival`
/// with a *relative* deadline `deadline` (the paper's `s_j` and `d_j`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Position in the trace.
    pub id: RequestId,
    /// Absolute arrival time `s_j`.
    pub arrival: Time,
    /// Type of the triggered task.
    pub task_type: TaskTypeId,
    /// Relative deadline `d_j`; the absolute deadline is `arrival + deadline`.
    pub deadline: Time,
}

impl Request {
    /// Absolute deadline `s_j + d_j`.
    #[must_use]
    pub fn absolute_deadline(&self) -> Time {
        self.arrival + self.deadline
    }
}

/// A time-ordered stream of requests.
///
/// # Examples
///
/// ```
/// use rtrm_platform::{Request, RequestId, TaskTypeId, Time, Trace};
///
/// let trace = Trace::new(vec![Request {
///     id: RequestId::new(0),
///     arrival: Time::new(0.0),
///     task_type: TaskTypeId::new(3),
///     deadline: Time::new(12.0),
/// }]);
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Creates a trace from requests.
    ///
    /// # Panics
    ///
    /// Panics if arrivals are not non-decreasing or request ids are not the
    /// dense sequence `0..len` (the simulator and oracle predictor rely on
    /// both).
    #[must_use]
    pub fn new(requests: Vec<Request>) -> Self {
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(r.id.index(), i, "request ids must be dense and ordered");
            if i > 0 {
                assert!(
                    requests[i - 1].arrival <= r.arrival,
                    "request arrivals must be non-decreasing"
                );
            }
        }
        Trace { requests }
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if the trace holds no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Returns the request with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn request(&self, id: RequestId) -> &Request {
        &self.requests[id.index()]
    }

    /// The request following `id`, if any.
    #[must_use]
    pub fn next_after(&self, id: RequestId) -> Option<&Request> {
        self.requests.get(id.index() + 1)
    }

    /// Iterates over requests in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.requests.iter()
    }

    /// Mean interarrival time, or `None` for traces with fewer than two
    /// requests. Used by the prediction-overhead model (Sec 5.5) and by the
    /// arrival-time error normalization (Sec 5.4).
    #[must_use]
    pub fn mean_interarrival(&self) -> Option<Time> {
        if self.requests.len() < 2 {
            return None;
        }
        let span = self.requests.last().expect("non-empty").arrival
            - self.requests.first().expect("non-empty").arrival;
        Some(span / (self.requests.len() - 1) as f64)
    }
}

impl FromIterator<Request> for Trace {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;

    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(i: usize, arrival: f64) -> Request {
        Request {
            id: RequestId::new(i),
            arrival: Time::new(arrival),
            task_type: TaskTypeId::new(0),
            deadline: Time::new(10.0),
        }
    }

    #[test]
    fn absolute_deadline() {
        let r = req(0, 3.0);
        assert_eq!(r.absolute_deadline(), Time::new(13.0));
    }

    #[test]
    fn ordered_trace_accepted() {
        let t = Trace::new(vec![req(0, 0.0), req(1, 1.0), req(2, 1.0)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.next_after(RequestId::new(1)).unwrap().id.index(), 2);
        assert!(t.next_after(RequestId::new(2)).is_none());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unordered_trace_rejected() {
        let _ = Trace::new(vec![req(0, 5.0), req(1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn sparse_ids_rejected() {
        let _ = Trace::new(vec![req(1, 0.0)]);
    }

    #[test]
    fn mean_interarrival() {
        let t = Trace::new(vec![req(0, 0.0), req(1, 2.0), req(2, 6.0)]);
        assert_eq!(t.mean_interarrival().unwrap(), Time::new(3.0));
        let single = Trace::new(vec![req(0, 0.0)]);
        assert!(single.mean_interarrival().is_none());
    }
}
