//! # rtrm-platform
//!
//! System model for prediction-aided runtime resource management on
//! heterogeneous embedded platforms, reproducing the model of
//! *Niknafs, Ukhov, Eles, Peng — "Runtime Resource Management with Workload
//! Prediction", DAC 2019*.
//!
//! The model consists of:
//!
//! * a [`Platform`] of `N` computation resources ([`Resource`]), each either a
//!   preemptable CPU or a run-to-completion GPU ([`ResourceKind`]);
//! * a [`TaskCatalog`] of `L` task types ([`TaskType`]), each with
//!   per-resource worst-case execution time and average energy
//!   ([`ExecutionProfile`]) and a migration-overhead matrix
//!   ([`MigrationOverhead`]);
//! * a [`Trace`] of [`Request`]s, each triggering one firm real-time task
//!   with an arrival time and a relative deadline.
//!
//! Quantities are the [`Time`] and [`Energy`] newtypes.
//!
//! # Examples
//!
//! Build the motivational example of the paper (Table 1):
//!
//! ```
//! use rtrm_platform::{Energy, Platform, TaskType, Time};
//!
//! let platform = Platform::builder().cpus(2).gpu("gpu0").build();
//! let ids: Vec<_> = platform.ids().collect();
//! let tau1 = TaskType::builder(0, &platform)
//!     .profile(ids[0], Time::new(8.0), Energy::new(7.3))
//!     .profile(ids[1], Time::new(12.0), Energy::new(8.4))
//!     .profile(ids[2], Time::new(5.0), Energy::new(2.0))
//!     .build();
//! assert_eq!(tau1.min_energy(), Energy::new(2.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod index;
mod request;
mod resource;
mod task;
mod units;

pub use index::{PlatformIndex, RankedPlacement, DEFAULT_SHORTLIST};
pub use request::{Request, RequestId, Trace};
pub use resource::{Platform, PlatformBuilder, Resource, ResourceId, ResourceKind};
pub use task::{
    ExecutionProfile, MigrationOverhead, TaskCatalog, TaskType, TaskTypeBuilder, TaskTypeId,
};
pub use units::{Energy, Time, TIME_EPSILON};
