//! Precomputed placement rankings over a (platform, catalog) pair.
//!
//! At paper scale (5 CPUs + 1 GPU) a resource manager can afford to rescan
//! every resource for every job at every activation. At datacenter scale
//! (hundreds of heterogeneous resources with DVFS levels) that rescan is the
//! decide path's dominant cost — yet the quantity being recomputed is a pure
//! function of the platform and the task catalog: for a *fresh* job (the
//! arriving task, a predicted phantom) the candidate set is exactly "every
//! (resource, speed level) pair the type executes on", and the paper's
//! desirability order `f_{j,i}` over it is the energy order. Neither changes
//! until the platform or catalog changes.
//!
//! [`PlatformIndex`] hoists that work to construction time: one ranked
//! placement row per task type — the key is the task type; the row's entries
//! are the type's `(resource, speed-level)` class, energy-ascending — plus
//! running aggregates (the maximum candidate energy that the heuristic's
//! penalty weight needs). Managers consult the row instead of rescanning the
//! platform, and treat the first `shortlist_len` entries as the top-k
//! shortlist: the prefix scanned first on the hot path, widened to the full
//! row only when every shortlisted placement is infeasible (see
//! `DESIGN.md` §8 for why widening keeps verdicts intact).

use serde::{Deserialize, Serialize};

use crate::{Energy, Platform, ResourceId, TaskCatalog, TaskTypeId, Time};

/// Default shortlist length: how many top-ranked placements the hot path
/// scans before widening to the full row.
pub const DEFAULT_SHORTLIST: usize = 8;

/// One precomputed placement option of a task type: a `(resource, speed)`
/// pair with its effective fresh-execution cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedPlacement {
    /// Target resource.
    pub resource: ResourceId,
    /// DVFS speed level (factor of nominal frequency).
    pub speed: f64,
    /// Effective WCET at this speed (`c_{j,i} / s`).
    pub wcet: Time,
    /// Effective full-execution energy at this speed (`e_{j,i} · s²`).
    pub energy: Energy,
}

/// Ranked placement rows per task type, rebuilt only when the platform or
/// catalog changes.
///
/// # Examples
///
/// ```
/// use rtrm_platform::{Energy, Platform, PlatformIndex, TaskCatalog, TaskType, TaskTypeId, Time};
///
/// let platform = Platform::builder().cpus(1).gpu("g").build();
/// let ids: Vec<_> = platform.ids().collect();
/// let ty = TaskType::builder(0, &platform)
///     .profile(ids[0], Time::new(8.0), Energy::new(7.3))
///     .profile(ids[1], Time::new(5.0), Energy::new(2.0))
///     .build();
/// let catalog = TaskCatalog::new(vec![ty]);
/// let index = PlatformIndex::build(&platform, &catalog);
/// // The GPU is energy-cheapest, so it ranks first.
/// assert_eq!(index.row(TaskTypeId::new(0))[0].resource, ids[1]);
/// assert_eq!(index.max_candidate_energy(), Energy::new(7.3));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformIndex {
    /// `rows[type index]`: the type's placements, energy-ascending (ties by
    /// resource id, then ascending speed).
    rows: Vec<Vec<RankedPlacement>>,
    /// Largest fresh-candidate energy over all rows.
    max_energy: Energy,
    /// Shortlist prefix length for the hot path.
    shortlist_len: usize,
    /// Identity guards: the platform/catalog sizes the index was built for.
    platform_len: usize,
    catalog_len: usize,
    /// Content fingerprint of the world the index was built from (see
    /// [`world_fingerprint`](PlatformIndex::world_fingerprint)).
    fingerprint: u64,
}

/// FNV-1a over one 64-bit word.
fn fnv(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl PlatformIndex {
    /// Builds the index with the [`DEFAULT_SHORTLIST`] prefix length.
    /// O(L · m log m) over `L` types and `m` (resource, level) pairs.
    #[must_use]
    pub fn build(platform: &Platform, catalog: &TaskCatalog) -> Self {
        PlatformIndex::with_shortlist(platform, catalog, DEFAULT_SHORTLIST)
    }

    /// Builds the index with an explicit shortlist prefix length (clamped to
    /// at least 2 so the regret computation's best/second-best pair can stay
    /// inside the shortlist).
    #[must_use]
    pub fn with_shortlist(platform: &Platform, catalog: &TaskCatalog, k: usize) -> Self {
        let mut max_energy = Energy::ZERO;
        let rows = catalog
            .iter()
            .map(|ty| {
                let mut row: Vec<RankedPlacement> = Vec::new();
                for resource in ty.executable_resources() {
                    let profile = ty.profile(resource).expect("executable resource");
                    for &speed in platform.resource(resource).speed_levels() {
                        let energy = profile.energy * (speed * speed);
                        max_energy = max_energy.max(energy);
                        row.push(RankedPlacement {
                            resource,
                            speed,
                            wcet: profile.wcet / speed,
                            energy,
                        });
                    }
                }
                // Energy-ascending, ties by resource id: exactly the stable
                // desirability order the managers sort fresh candidates into
                // (speed levels on one resource never tie — distinct speeds
                // give distinct energies). A stable sort keeps the ascending
                // speed emission order for any remaining ties.
                row.sort_by(|a, b| a.energy.cmp(&b.energy).then(a.resource.cmp(&b.resource)));
                row
            })
            .collect();
        PlatformIndex {
            rows,
            max_energy,
            shortlist_len: k.max(2),
            platform_len: platform.len(),
            catalog_len: catalog.len(),
            fingerprint: PlatformIndex::world_fingerprint(platform, catalog),
        }
    }

    /// Content fingerprint of everything the index depends on: resource
    /// kinds and speed levels, and per-type execution profiles (migration
    /// overheads are excluded on purpose — index rows only cover *fresh*
    /// placements, which never migrate). FNV-1a over the raw bit patterns;
    /// O(L·m) — cheap enough to recompute once per simulation run, which is
    /// how a long-lived pool detects that its cached index belongs to a
    /// different world of the same shape.
    #[must_use]
    pub fn world_fingerprint(platform: &Platform, catalog: &TaskCatalog) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        h = fnv(h, platform.len() as u64);
        for r in platform.ids() {
            let resource = platform.resource(r);
            h = fnv(h, u64::from(resource.kind().is_preemptable()));
            for &s in resource.speed_levels() {
                h = fnv(h, s.to_bits());
            }
            h = fnv(h, u64::MAX); // level-list terminator
        }
        h = fnv(h, catalog.len() as u64);
        for ty in catalog.iter() {
            for r in platform.ids() {
                match ty.profile(r) {
                    Some(profile) => {
                        h = fnv(h, profile.wcet.value().to_bits());
                        h = fnv(h, profile.energy.value().to_bits());
                    }
                    None => h = fnv(h, u64::MAX - 1), // not executable marker
                }
            }
        }
        h
    }

    /// The fingerprint of the world this index was built from.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The full ranked placement row of a task type, energy-ascending.
    ///
    /// # Panics
    ///
    /// Panics if the type is not in the catalog the index was built for.
    #[must_use]
    pub fn row(&self, ty: TaskTypeId) -> &[RankedPlacement] {
        &self.rows[ty.index()]
    }

    /// The top-k shortlist of a task type: the first `shortlist_len` entries
    /// of [`row`](PlatformIndex::row) (or the whole row when shorter).
    #[must_use]
    pub fn shortlist(&self, ty: TaskTypeId) -> &[RankedPlacement] {
        let row = self.row(ty);
        &row[..row.len().min(self.shortlist_len)]
    }

    /// The shortlist prefix length.
    #[must_use]
    pub fn shortlist_len(&self) -> usize {
        self.shortlist_len
    }

    /// Largest fresh-candidate energy over the whole catalog — an upper
    /// bound feeding the heuristic's penalty weight without a per-activation
    /// table scan.
    #[must_use]
    pub fn max_candidate_energy(&self) -> Energy {
        self.max_energy
    }

    /// Returns `true` if the index plausibly belongs to this
    /// (platform, catalog) pair — a cheap size guard; callers are
    /// responsible for installing an index built from the pair they decide
    /// with (the simulator rebuilds per run).
    #[must_use]
    pub fn matches(&self, platform: &Platform, catalog: &TaskCatalog) -> bool {
        self.platform_len == platform.len() && self.catalog_len == catalog.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskType;

    fn world() -> (Platform, TaskCatalog) {
        let mut b = Platform::builder();
        b.cpu_with_dvfs("c0", &[0.5, 1.0]).cpus(1).gpu("g");
        let platform = b.build();
        let ids: Vec<_> = platform.ids().collect();
        let ty = TaskType::builder(0, &platform)
            .profile(ids[0], Time::new(8.0), Energy::new(4.0))
            .profile(ids[1], Time::new(6.0), Energy::new(5.0))
            .profile(ids[2], Time::new(5.0), Energy::new(2.0))
            .build();
        (platform, TaskCatalog::new(vec![ty]))
    }

    #[test]
    fn rows_are_energy_sorted_with_dvfs_levels() {
        let (platform, catalog) = world();
        let index = PlatformIndex::build(&platform, &catalog);
        let row = index.row(TaskTypeId::new(0));
        // c0@0.5 → 4·0.25 = 1 J, gpu → 2 J, c0@1.0 → 4 J, c1 → 5 J.
        assert_eq!(row.len(), 4);
        let energies: Vec<f64> = row.iter().map(|p| p.energy.value()).collect();
        assert_eq!(energies, vec![1.0, 2.0, 4.0, 5.0]);
        assert_eq!(row[0].resource.index(), 0);
        assert_eq!(row[0].speed, 0.5);
        assert_eq!(row[0].wcet, Time::new(16.0)); // 8 / 0.5
        assert_eq!(index.max_candidate_energy(), Energy::new(5.0));
    }

    #[test]
    fn shortlist_is_prefix_and_clamped() {
        let (platform, catalog) = world();
        let index = PlatformIndex::with_shortlist(&platform, &catalog, 0);
        assert_eq!(index.shortlist_len(), 2, "clamped to 2");
        let ty = TaskTypeId::new(0);
        assert_eq!(index.shortlist(ty), &index.row(ty)[..2]);
        let wide = PlatformIndex::with_shortlist(&platform, &catalog, 99);
        assert_eq!(wide.shortlist(ty).len(), 4, "capped at the row length");
    }

    #[test]
    fn fingerprint_tracks_world_content_not_just_shape() {
        let (platform, catalog) = world();
        let index = PlatformIndex::build(&platform, &catalog);
        assert_eq!(
            index.fingerprint(),
            PlatformIndex::world_fingerprint(&platform, &catalog)
        );
        // Same shape, one profile energy changed: different fingerprint.
        let ids: Vec<_> = platform.ids().collect();
        let ty = TaskType::builder(0, &platform)
            .profile(ids[0], Time::new(8.0), Energy::new(4.5))
            .profile(ids[1], Time::new(6.0), Energy::new(5.0))
            .profile(ids[2], Time::new(5.0), Energy::new(2.0))
            .build();
        let other = TaskCatalog::new(vec![ty]);
        assert!(index.matches(&platform, &other), "size guard can't see it");
        assert_ne!(
            index.fingerprint(),
            PlatformIndex::world_fingerprint(&platform, &other)
        );
    }

    #[test]
    fn non_executable_resources_are_absent() {
        let platform = Platform::builder().cpus(3).build();
        let ids: Vec<_> = platform.ids().collect();
        let ty = TaskType::builder(0, &platform)
            .profile(ids[1], Time::new(3.0), Energy::new(1.0))
            .build();
        let catalog = TaskCatalog::new(vec![ty]);
        let index = PlatformIndex::build(&platform, &catalog);
        let row = index.row(TaskTypeId::new(0));
        assert_eq!(row.len(), 1);
        assert_eq!(row[0].resource, ids[1]);
        assert!(index.matches(&platform, &catalog));
    }
}
