//! Computation resources and the heterogeneous [`Platform`].

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a resource within its [`Platform`].
///
/// # Examples
///
/// ```
/// use rtrm_platform::ResourceId;
///
/// let id = ResourceId::new(2);
/// assert_eq!(id.index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ResourceId(u32);

impl ResourceId {
    /// Creates a resource id from its platform index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        ResourceId(u32::try_from(index).expect("resource index fits in u32"))
    }

    /// Returns the platform index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The execution discipline of a resource.
///
/// The paper distinguishes preemptable resources (CPUs) from resources that
/// must run a task to completion once started (GPUs): a task started on a GPU
/// cannot be paused and resumed — it can only be *aborted*, losing all
/// progress, and restarted from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Fully preemptable processor; partial progress transfers on migration.
    Cpu,
    /// Run-to-completion accelerator; no preemption, no partial migration.
    Gpu,
}

impl ResourceKind {
    /// Returns `true` if a task executing on this resource can be preempted
    /// and later resumed (possibly elsewhere, with migration overhead).
    #[must_use]
    pub fn is_preemptable(self) -> bool {
        matches!(self, ResourceKind::Cpu)
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Cpu => write!(f, "CPU"),
            ResourceKind::Gpu => write!(f, "GPU"),
        }
    }
}

/// A single computation resource of the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    id: ResourceId,
    kind: ResourceKind,
    name: String,
    /// DVFS speed levels as factors of the nominal frequency, ascending.
    /// `[1.0]` for resources without frequency scaling.
    speed_levels: Vec<f64>,
}

impl Resource {
    /// Returns the resource id.
    #[must_use]
    pub fn id(&self) -> ResourceId {
        self.id
    }

    /// Returns the execution discipline.
    #[must_use]
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// Returns the human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// DVFS speed levels (factors of the nominal frequency, ascending).
    /// Execution time scales with `1/s`; dynamic energy with `s²` (power
    /// `∝ f·V² ≈ f³`, times duration `1/f`). `[1.0]` when the resource has
    /// no frequency scaling.
    #[must_use]
    pub fn speed_levels(&self) -> &[f64] {
        &self.speed_levels
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.name, self.kind, self.id)
    }
}

/// A heterogeneous multiprocessor platform: an ordered set of resources.
///
/// # Examples
///
/// ```
/// use rtrm_platform::{Platform, ResourceKind};
///
/// let platform = Platform::builder()
///     .cpus(2)
///     .gpu("gpu0")
///     .build();
/// assert_eq!(platform.len(), 3);
/// assert_eq!(platform.resource(platform.ids().nth(2).unwrap()).kind(), ResourceKind::Gpu);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    resources: Vec<Resource>,
}

impl Platform {
    /// Starts building a platform.
    #[must_use]
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::new()
    }

    /// The 5-CPU + 1-GPU platform used throughout the paper's evaluation
    /// (Sec 5.1).
    #[must_use]
    pub fn paper_default() -> Self {
        Platform::builder().cpus(5).gpu("gpu0").build()
    }

    /// Number of resources (the paper's `N`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Returns `true` if the platform has no resources.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Returns the resource with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this platform.
    #[must_use]
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }

    /// Iterates over all resources in id order.
    pub fn resources(&self) -> impl Iterator<Item = &Resource> {
        self.resources.iter()
    }

    /// Iterates over all resource ids in order.
    pub fn ids(&self) -> impl Iterator<Item = ResourceId> {
        (0..self.resources.len()).map(ResourceId::new)
    }

    /// Iterates over the ids of resources of the given kind.
    pub fn ids_of_kind(&self, kind: ResourceKind) -> impl Iterator<Item = ResourceId> + '_ {
        self.resources
            .iter()
            .filter(move |r| r.kind == kind)
            .map(|r| r.id)
    }
}

/// Incrementally constructs a [`Platform`].
#[derive(Debug, Clone, Default)]
pub struct PlatformBuilder {
    resources: Vec<Resource>,
}

impl PlatformBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        PlatformBuilder::default()
    }

    fn push(&mut self, kind: ResourceKind, name: String) -> &mut Self {
        self.push_with_levels(kind, name, vec![1.0])
    }

    fn push_with_levels(
        &mut self,
        kind: ResourceKind,
        name: String,
        speed_levels: Vec<f64>,
    ) -> &mut Self {
        assert!(
            !speed_levels.is_empty()
                && speed_levels.iter().all(|s| *s > 0.0 && s.is_finite())
                && speed_levels.windows(2).all(|w| w[0] < w[1]),
            "speed levels must be positive, finite and strictly ascending"
        );
        let id = ResourceId::new(self.resources.len());
        self.resources.push(Resource {
            id,
            kind,
            name,
            speed_levels,
        });
        self
    }

    /// Appends one named CPU.
    pub fn cpu(&mut self, name: impl Into<String>) -> &mut Self {
        self.push(ResourceKind::Cpu, name.into())
    }

    /// Appends a DVFS-capable CPU with the given speed levels (factors of
    /// the nominal frequency the task profiles are stated at, ascending,
    /// e.g. `&[0.5, 0.75, 1.0]`).
    ///
    /// # Panics
    ///
    /// Panics if the levels are empty, non-positive, non-finite, or not
    /// strictly ascending.
    pub fn cpu_with_dvfs(&mut self, name: impl Into<String>, levels: &[f64]) -> &mut Self {
        self.push_with_levels(ResourceKind::Cpu, name.into(), levels.to_vec())
    }

    /// Appends `count` CPUs named `cpu0..cpuN`.
    pub fn cpus(&mut self, count: usize) -> &mut Self {
        let start = self.resources.len();
        for i in 0..count {
            self.push(ResourceKind::Cpu, format!("cpu{}", start + i));
        }
        self
    }

    /// Appends one named GPU.
    pub fn gpu(&mut self, name: impl Into<String>) -> &mut Self {
        self.push(ResourceKind::Gpu, name.into())
    }

    /// Finalizes the platform.
    ///
    /// # Panics
    ///
    /// Panics if no resource was added: an empty platform cannot execute
    /// anything.
    #[must_use]
    pub fn build(&mut self) -> Platform {
        assert!(
            !self.resources.is_empty(),
            "a platform needs at least one resource"
        );
        Platform {
            resources: std::mem::take(&mut self.resources),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let p = Platform::builder().cpus(3).gpu("g").build();
        let ids: Vec<usize> = p.ids().map(ResourceId::index).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(p.resource(ResourceId::new(3)).kind(), ResourceKind::Gpu);
        assert_eq!(p.resource(ResourceId::new(1)).name(), "cpu1");
    }

    #[test]
    fn paper_default_is_five_cpus_one_gpu() {
        let p = Platform::paper_default();
        assert_eq!(p.len(), 6);
        assert_eq!(p.ids_of_kind(ResourceKind::Cpu).count(), 5);
        assert_eq!(p.ids_of_kind(ResourceKind::Gpu).count(), 1);
    }

    #[test]
    fn preemptability() {
        assert!(ResourceKind::Cpu.is_preemptable());
        assert!(!ResourceKind::Gpu.is_preemptable());
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn empty_platform_rejected() {
        let _ = Platform::builder().build();
    }

    #[test]
    fn display_forms() {
        let p = Platform::builder().cpu("big0").build();
        let r = p.resource(ResourceId::new(0));
        assert_eq!(format!("{r}"), "big0 (CPU, r0)");
    }
}
