//! Task types: per-resource execution profiles and migration overheads.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Energy, Platform, ResourceId, Time};

/// Identifier of a task *type* (the paper's τ_j template, triggered by
/// requests of that type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskTypeId(u32);

impl TaskTypeId {
    /// Creates a task-type id from its catalog index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        TaskTypeId(u32::try_from(index).expect("task type index fits in u32"))
    }

    /// Returns the catalog index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// Worst-case execution time and average energy of a task type on one
/// resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionProfile {
    /// Worst-case execution time (the paper's `c_{j,i}`).
    pub wcet: Time,
    /// Average energy consumed by a full execution (the paper's `e_{j,i}`).
    pub energy: Energy,
}

impl ExecutionProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `wcet` or `energy` is not strictly positive and finite.
    #[must_use]
    pub fn new(wcet: Time, energy: Energy) -> Self {
        assert!(
            wcet > Time::ZERO && wcet.is_finite(),
            "WCET must be positive and finite"
        );
        assert!(
            energy > Energy::ZERO && energy.is_finite(),
            "energy must be positive and finite"
        );
        ExecutionProfile { wcet, energy }
    }
}

/// Time and energy overhead of migrating a (started) task between two
/// resources (the paper's `cm_{j,k,i}` and `em_{j,k,i}`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct MigrationOverhead {
    /// Extra execution time added on the destination resource.
    pub time: Time,
    /// Extra energy charged for the transfer.
    pub energy: Energy,
}

/// A task type: the per-resource execution profiles plus the migration
/// overhead matrix. A task is executable on at least one resource; resources
/// where it cannot run have no profile (the paper uses "dummy values" there).
///
/// # Examples
///
/// ```
/// use rtrm_platform::{Platform, TaskType, Time, Energy};
///
/// let platform = Platform::builder().cpus(1).gpu("g").build();
/// let ids: Vec<_> = platform.ids().collect();
/// let tt = TaskType::builder(0, &platform)
///     .profile(ids[0], Time::new(8.0), Energy::new(7.3))
///     .profile(ids[1], Time::new(5.0), Energy::new(2.0))
///     .uniform_migration(Time::new(1.0), Energy::new(1.0))
///     .build();
/// assert!(tt.is_executable_on(ids[1]));
/// assert_eq!(tt.wcet(ids[0]).unwrap(), Time::new(8.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskType {
    id: TaskTypeId,
    profiles: Vec<Option<ExecutionProfile>>,
    /// `migration[from][to]`; the diagonal is zero.
    migration: Vec<Vec<MigrationOverhead>>,
}

impl TaskType {
    /// Starts building a task type for the given platform.
    #[must_use]
    pub fn builder(index: usize, platform: &Platform) -> TaskTypeBuilder {
        TaskTypeBuilder {
            id: TaskTypeId::new(index),
            n: platform.len(),
            profiles: vec![None; platform.len()],
            migration: vec![vec![MigrationOverhead::default(); platform.len()]; platform.len()],
        }
    }

    /// Returns the type id.
    #[must_use]
    pub fn id(&self) -> TaskTypeId {
        self.id
    }

    /// Returns `true` if the type can execute on `resource`.
    #[must_use]
    pub fn is_executable_on(&self, resource: ResourceId) -> bool {
        self.profiles[resource.index()].is_some()
    }

    /// Execution profile on `resource`, or `None` if not executable there.
    #[must_use]
    pub fn profile(&self, resource: ResourceId) -> Option<&ExecutionProfile> {
        self.profiles[resource.index()].as_ref()
    }

    /// WCET on `resource`, or `None` if not executable there.
    #[must_use]
    pub fn wcet(&self, resource: ResourceId) -> Option<Time> {
        self.profile(resource).map(|p| p.wcet)
    }

    /// Full-execution energy on `resource`, or `None` if not executable
    /// there.
    #[must_use]
    pub fn energy(&self, resource: ResourceId) -> Option<Energy> {
        self.profile(resource).map(|p| p.energy)
    }

    /// Migration overhead when moving a started task `from → to`.
    #[must_use]
    pub fn migration(&self, from: ResourceId, to: ResourceId) -> MigrationOverhead {
        self.migration[from.index()][to.index()]
    }

    /// Ids of the resources the type can execute on.
    pub fn executable_resources(&self) -> impl Iterator<Item = ResourceId> + '_ {
        self.profiles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(i, _)| ResourceId::new(i))
    }

    /// Mean WCET over the resources the type can execute on.
    #[must_use]
    pub fn mean_wcet(&self) -> Time {
        let (sum, n) = self
            .profiles
            .iter()
            .flatten()
            .fold((Time::ZERO, 0usize), |(s, n), p| (s + p.wcet, n + 1));
        sum / n as f64
    }

    /// Mean full-execution energy over the resources the type can execute on.
    #[must_use]
    pub fn mean_energy(&self) -> Energy {
        let (sum, n) = self
            .profiles
            .iter()
            .flatten()
            .fold((Energy::ZERO, 0usize), |(s, n), p| (s + p.energy, n + 1));
        sum / n as f64
    }

    /// Smallest WCET over executable resources (a lower bound on response
    /// time regardless of mapping).
    #[must_use]
    pub fn min_wcet(&self) -> Time {
        self.profiles
            .iter()
            .flatten()
            .map(|p| p.wcet)
            .min()
            .expect("task type is executable somewhere")
    }

    /// Smallest full-execution energy over executable resources.
    #[must_use]
    pub fn min_energy(&self) -> Energy {
        self.profiles
            .iter()
            .flatten()
            .map(|p| p.energy)
            .min()
            .expect("task type is executable somewhere")
    }
}

/// Incrementally constructs a [`TaskType`].
#[derive(Debug, Clone)]
pub struct TaskTypeBuilder {
    id: TaskTypeId,
    n: usize,
    profiles: Vec<Option<ExecutionProfile>>,
    migration: Vec<Vec<MigrationOverhead>>,
}

impl TaskTypeBuilder {
    /// Sets the execution profile on one resource.
    pub fn profile(&mut self, resource: ResourceId, wcet: Time, energy: Energy) -> &mut Self {
        self.profiles[resource.index()] = Some(ExecutionProfile::new(wcet, energy));
        self
    }

    /// Sets the migration overhead for one ordered resource pair.
    pub fn migration(
        &mut self,
        from: ResourceId,
        to: ResourceId,
        time: Time,
        energy: Energy,
    ) -> &mut Self {
        self.migration[from.index()][to.index()] = MigrationOverhead { time, energy };
        self
    }

    /// Sets the same migration overhead for every off-diagonal pair.
    pub fn uniform_migration(&mut self, time: Time, energy: Energy) -> &mut Self {
        for from in 0..self.n {
            for to in 0..self.n {
                if from != to {
                    self.migration[from][to] = MigrationOverhead { time, energy };
                }
            }
        }
        self
    }

    /// Finalizes the task type.
    ///
    /// # Panics
    ///
    /// Panics if the type is not executable on any resource (the paper
    /// requires executability on at least one resource).
    #[must_use]
    pub fn build(&mut self) -> TaskType {
        assert!(
            self.profiles.iter().any(Option::is_some),
            "task type must be executable on at least one resource"
        );
        TaskType {
            id: self.id,
            profiles: std::mem::take(&mut self.profiles),
            migration: std::mem::take(&mut self.migration),
        }
    }
}

/// The set of task types known to the system (the paper creates 100).
///
/// A catalog is built against a specific [`Platform`]; all contained types
/// have profile vectors of the platform's length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskCatalog {
    types: Vec<TaskType>,
}

impl TaskCatalog {
    /// Creates a catalog from task types.
    ///
    /// # Panics
    ///
    /// Panics if the types' ids are not exactly `0..len` in order, which
    /// would break id-based indexing.
    #[must_use]
    pub fn new(types: Vec<TaskType>) -> Self {
        for (i, t) in types.iter().enumerate() {
            assert_eq!(t.id().index(), i, "task type ids must be dense and ordered");
        }
        TaskCatalog { types }
    }

    /// Number of task types (the paper's `L`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Returns `true` if the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Returns the type with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is not in this catalog.
    #[must_use]
    pub fn task_type(&self, id: TaskTypeId) -> &TaskType {
        &self.types[id.index()]
    }

    /// Iterates over all types in id order.
    pub fn iter(&self) -> impl Iterator<Item = &TaskType> {
        self.types.iter()
    }
}

impl FromIterator<TaskType> for TaskCatalog {
    fn from_iter<I: IntoIterator<Item = TaskType>>(iter: I) -> Self {
        TaskCatalog::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::builder().cpus(2).gpu("g").build()
    }

    fn r(i: usize) -> ResourceId {
        ResourceId::new(i)
    }

    #[test]
    fn builder_and_accessors() {
        let p = platform();
        let t = TaskType::builder(0, &p)
            .profile(r(0), Time::new(8.0), Energy::new(7.3))
            .profile(r(2), Time::new(5.0), Energy::new(2.0))
            .migration(r(0), r(2), Time::new(0.5), Energy::new(0.2))
            .build();
        assert!(t.is_executable_on(r(0)));
        assert!(!t.is_executable_on(r(1)));
        assert_eq!(t.wcet(r(2)).unwrap(), Time::new(5.0));
        assert_eq!(t.energy(r(1)), None);
        assert_eq!(t.migration(r(0), r(2)).time, Time::new(0.5));
        assert_eq!(t.migration(r(2), r(0)).time, Time::ZERO);
        assert_eq!(
            t.executable_resources().collect::<Vec<_>>(),
            vec![r(0), r(2)]
        );
    }

    #[test]
    fn aggregates() {
        let p = platform();
        let t = TaskType::builder(0, &p)
            .profile(r(0), Time::new(10.0), Energy::new(6.0))
            .profile(r(1), Time::new(20.0), Energy::new(2.0))
            .build();
        assert_eq!(t.mean_wcet(), Time::new(15.0));
        assert_eq!(t.mean_energy(), Energy::new(4.0));
        assert_eq!(t.min_wcet(), Time::new(10.0));
        assert_eq!(t.min_energy(), Energy::new(2.0));
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn unexecutable_type_rejected() {
        let p = platform();
        let _ = TaskType::builder(0, &p).build();
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn catalog_requires_dense_ids() {
        let p = platform();
        let t = TaskType::builder(5, &p)
            .profile(r(0), Time::new(1.0), Energy::new(1.0))
            .build();
        let _ = TaskCatalog::new(vec![t]);
    }

    #[test]
    fn catalog_round_trip() {
        let p = platform();
        let cat: TaskCatalog = (0..3)
            .map(|i| {
                TaskType::builder(i, &p)
                    .profile(r(0), Time::new(1.0 + i as f64), Energy::new(1.0))
                    .build()
            })
            .collect();
        assert_eq!(cat.len(), 3);
        assert_eq!(
            cat.task_type(TaskTypeId::new(2)).wcet(r(0)).unwrap(),
            Time::new(3.0)
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_wcet_rejected() {
        let _ = ExecutionProfile::new(Time::ZERO, Energy::new(1.0));
    }
}
