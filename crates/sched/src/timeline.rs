//! Incremental EDF admission: a persistent per-resource timeline.
//!
//! The managers' inner loops (the heuristic's regret-ordered placement
//! attempts, the exact solver's branch-and-bound, the fallback ladder over
//! phantom counts) probe feasibility thousands of times per activation, and
//! consecutive probes differ by a single job. Re-simulating the whole queue —
//! even with the event-driven engine — makes each probe O(n log n).
//! [`EdfTimeline`] instead *retains* the timeline between probes:
//! [`EdfTimeline::push`] splices one job in and re-derives the feasibility
//! verdict in O(log n), and [`EdfTimeline::undo`] removes it again in
//! O(log n), so a whole placement search costs about one engine run.
//!
//! # How the incremental verdict works
//!
//! The common case by far is a *dense* queue: every job is released at (or
//! before) the activation instant `now`. Under EDF — preemptive or not — a
//! dense queue executes back-to-back in `(deadline, input order)` order, with
//! the pinned job (if any) dispatched first. Writing `E_u` for the sum of
//! execution times of jobs ordered at-or-before job `u` and `B` for the
//! pinned job's execution time, job `u` finishes at `now + B + E_u`, so the
//! queue is feasible iff
//!
//! ```text
//! min over u of (deadline_u - E_u)  >=  now + B - TIME_EPSILON
//! ```
//!
//! The timeline maintains the jobs in a balanced order-statistic tree (a
//! treap keyed by `(deadline, push order)`) whose nodes aggregate the subtree
//! execution-time sum and the subtree minimum of `deadline_u - E_u`; both
//! maintain under rotation in O(1), so push/undo are O(log n) and the
//! feasibility verdict is read off the root.
//!
//! # Future releases on preemptable resources
//!
//! Queues containing a *future-released* job (a predicted phantom, or an
//! arrival delayed by prediction overhead) gain idle gaps, so one prefix
//! bound no longer suffices. On a *preemptable* resource, though, EDF is
//! optimal, and single-processor feasibility is exactly the processor-demand
//! criterion: for every interval `[s, d]` with `s` an (effective) release
//! instant and `d` a deadline, the total execution of jobs released at or
//! after `s` with deadlines at or before `d` must fit in `d - s`. Only two
//! kinds of interval start matter — `now` (every dense job's effective
//! release) and the exact release of each future job — so the verdict
//! decomposes into the dense-prefix argument *per release segment*:
//!
//! ```text
//! for every segment s in {now} ∪ {future releases}:
//!     min over u with release_u >= s of (deadline_u - E_u^(s))  >=  s
//! ```
//!
//! where `E_u^(s)` sums execution over jobs released at-or-after `s`, taken
//! in `(deadline, push order)`. The `now` segment covers *all* jobs (future
//! releases included — their release is at-or-after `now`), so it is read
//! off the main treap root in O(1). Segments strictly after `now` contain
//! only the future jobs; [`EdfTimeline::feasible`] answers them by sweeping
//! the release-ordered future set from the latest release down, splicing
//! each segment's jobs into a second, scratch tree keyed by
//! `(deadline, push order)` and reading its root min-gap per segment. With
//! `k` future jobs a verdict costs O(log n + k log k) — O(log n) for the
//! single-phantom queue that dominates the managers' fallback ladder.
//!
//! *Non-preemptable* resources additionally suffer scheduling anomalies
//! under future releases (delaying one dispatch can repair another), which
//! the demand criterion does not capture; those queues fall back to a
//! from-scratch run of the event-driven engine over the retained job list,
//! memoized by exact queue content so the fallback ladder's repeated
//! re-examinations of the same queue stay cheap.
//!
//! The differential property suite in `tests/incremental.rs` asserts that
//! every push/undo sequence agrees — bit for bit on the verdict — with a
//! from-scratch [`is_schedulable_with`] over the same jobs and with the
//! scan-based [`crate::reference`] oracle.

use std::collections::HashMap;

use rtrm_platform::{ResourceKind, Time, TIME_EPSILON};

use crate::{is_schedulable_with, EdfScratch, PlannedJob};

/// Verdict of an [`EdfTimeline::push`]: is the queue (including the job just
/// pushed) schedulable on this resource?
#[must_use = "a feasibility verdict that is not inspected hides an admission failure"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// Every job in the queue meets its deadline.
    Feasible,
    /// At least one job misses its deadline.
    Infeasible,
}

impl Feasibility {
    /// Returns `true` for [`Feasibility::Feasible`].
    #[must_use]
    pub fn is_feasible(self) -> bool {
        matches!(self, Feasibility::Feasible)
    }
}

impl From<bool> for Feasibility {
    fn from(feasible: bool) -> Self {
        if feasible {
            Feasibility::Feasible
        } else {
            Feasibility::Infeasible
        }
    }
}

/// Where a pushed job went, so [`EdfTimeline::undo`] can unwind it.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Dense job: lives in the deadline treap.
    Tree,
    /// The pinned job (held outside the tree; it dispatches first).
    Pinned,
    /// Released after `now` (beyond [`TIME_EPSILON`]): lives in the deadline
    /// treap *and* on the release stack, so verdicts can run the
    /// demand-criterion sweep per release segment (preemptable resources) or
    /// the engine fallback (non-preemptable ones).
    Future,
}

/// Entries allowed in the engine-fallback memo before it is reset; bounds
/// memory on pathological workloads while never evicting the hot set of a
/// single placement search.
const MEMO_CAP: usize = 4096;

/// A persistent single-resource EDF timeline with O(log n) incremental
/// admission.
///
/// Push jobs with [`push`](EdfTimeline::push), retract the most recent one
/// with [`undo`](EdfTimeline::undo) (strict stack discipline), and read the
/// current verdict with [`feasible`](EdfTimeline::feasible). The semantics
/// are exactly those of [`is_schedulable_with`] over
/// [`jobs`](EdfTimeline::jobs): preemptive EDF on CPUs, work-conserving
/// non-preemptive EDF on GPUs, pinned job first.
///
/// # Examples
///
/// ```
/// use rtrm_platform::{ResourceKind, Time};
/// use rtrm_sched::{EdfTimeline, JobKey, PlannedJob};
///
/// let now = Time::ZERO;
/// let mut timeline = EdfTimeline::new(ResourceKind::Cpu, now);
/// let a = PlannedJob::new(JobKey(0), now, Time::new(3.0), Time::new(5.0));
/// let b = PlannedJob::new(JobKey(1), now, Time::new(4.0), Time::new(6.0));
///
/// assert!(timeline.push(a).is_feasible());
/// // `b` cannot fit behind `a`'s three units of work: 3 + 4 > 6.
/// assert!(!timeline.push(b).is_feasible());
/// let popped = timeline.undo(); // retract `b`; `a` alone is fine again
/// assert_eq!(popped.key, JobKey(1));
/// assert!(timeline.feasible());
/// assert_eq!(timeline.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EdfTimeline {
    kind: ResourceKind,
    start: Time,
    /// When set, every verdict uses the memoized from-scratch engine instead
    /// of the incremental tree — the pre-incremental baseline, kept callable
    /// for benchmarks and differential tests.
    oracle: bool,
    /// All pushed jobs, in push order (= the engine's input order, which
    /// breaks deadline ties).
    jobs: Vec<PlannedJob>,
    /// Per-job placement bookkeeping, parallel to `jobs`.
    slots: Vec<Slot>,
    tree: Treap,
    /// Index into `jobs` of the pinned job, if one was pushed.
    pinned: Option<usize>,
    /// Indices (into `jobs`) of future-released jobs, in push order. Undo is
    /// strict LIFO over all pushes, so this behaves as a stack too.
    future_stack: Vec<u32>,
    /// Scratch: `future_stack` sorted by `(release, push order)` for the
    /// per-segment sweep of [`EdfTimeline::feasible`].
    seg_order: Vec<u32>,
    /// Scratch tree keyed by `(deadline, push order)` rebuilt over the
    /// future jobs during the per-segment sweep.
    seg_tree: Treap,
    /// Verdicts answered by the from-scratch engine (memoized or not)
    /// instead of the incremental trees, since construction. Cumulative
    /// across [`reset`](EdfTimeline::reset); diagnostics only.
    engine_verdicts: u64,
    scratch: EdfScratch,
    memo: HashMap<Vec<u64>, bool>,
    probe: Vec<u64>,
}

impl EdfTimeline {
    /// Creates an empty timeline for a resource of `kind` whose queue starts
    /// executing at `now`.
    #[must_use]
    pub fn new(kind: ResourceKind, now: Time) -> Self {
        EdfTimeline {
            kind,
            start: now,
            oracle: false,
            jobs: Vec::new(),
            slots: Vec::new(),
            tree: Treap::default(),
            pinned: None,
            future_stack: Vec::new(),
            seg_order: Vec::new(),
            seg_tree: Treap::default(),
            engine_verdicts: 0,
            scratch: EdfScratch::new(),
            memo: HashMap::new(),
            probe: Vec::new(),
        }
    }

    /// Empties the timeline for reuse, keeping its allocations warm.
    ///
    /// The engine-fallback memo survives the reset when `kind` and `now` are
    /// unchanged (verdicts depend only on the queue content given those two),
    /// which is what lets the managers' fallback ladder re-examine the same
    /// queues for free; it is dropped when either changes.
    pub fn reset(&mut self, kind: ResourceKind, now: Time) {
        if kind != self.kind || now != self.start {
            self.memo.clear();
        }
        self.kind = kind;
        self.start = now;
        self.jobs.clear();
        self.slots.clear();
        self.tree.clear();
        self.pinned = None;
        self.future_stack.clear();
    }

    /// Switches between incremental verdicts (default) and the memoized
    /// from-scratch engine. Both modes agree on every verdict; the oracle
    /// mode exists as an in-binary baseline for benchmarks and tests.
    pub fn set_oracle(&mut self, oracle: bool) {
        self.oracle = oracle;
    }

    /// The resource kind this timeline schedules for.
    #[must_use]
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// The instant the queue starts executing.
    #[must_use]
    pub fn now(&self) -> Time {
        self.start
    }

    /// The jobs currently on the timeline, in push order.
    #[must_use]
    pub fn jobs(&self) -> &[PlannedJob] {
        &self.jobs
    }

    /// Number of jobs on the timeline.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` if no jobs have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Splices `job` into the timeline and returns whether the whole queue
    /// (including `job`) is schedulable. O(log n) for dense queues.
    ///
    /// The verdict is [`#[must_use]`](Feasibility): an uninspected push is an
    /// admission decision nobody checked. An infeasible push still retains
    /// the job — retract it with [`undo`](EdfTimeline::undo) if the caller
    /// was only probing (or use [`fits`](EdfTimeline::fits)).
    ///
    /// # Panics
    ///
    /// Panics if `job.exec` is negative or non-finite, if `job` is pinned on
    /// a preemptable resource, or if a pinned job is already present.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtrm_platform::{ResourceKind, Time};
    /// use rtrm_sched::{EdfTimeline, JobKey, PlannedJob};
    ///
    /// let mut timeline = EdfTimeline::new(ResourceKind::Cpu, Time::ZERO);
    /// let job = PlannedJob::new(JobKey(7), Time::ZERO, Time::new(2.0), Time::new(2.0));
    /// assert!(timeline.push(job).is_feasible(), "an exact fit is feasible");
    /// ```
    pub fn push(&mut self, job: PlannedJob) -> Feasibility {
        assert!(
            job.exec >= Time::ZERO && job.exec.is_finite(),
            "job exec must be finite and non-negative"
        );
        let slot = if job.pinned {
            assert!(
                self.kind == ResourceKind::Gpu,
                "pinning applies only to non-preemptable resources"
            );
            assert!(
                self.pinned.is_none(),
                "at most one job may be pinned per resource"
            );
            self.pinned = Some(self.jobs.len());
            Slot::Pinned
        } else if job.release.released_by(self.start) {
            // `(deadline, push order)` keys make ties deterministic and
            // identical to the engine's input-order tie-break.
            self.tree.insert(
                job.deadline.value(),
                self.jobs.len() as u32,
                job.exec.value(),
            );
            Slot::Tree
        } else {
            // Future release: the job still joins the deadline treap — the
            // `now` segment of the demand criterion spans every job — and its
            // index is stacked for the per-segment sweep (preemptable) or to
            // trigger the engine fallback (non-preemptable).
            self.tree.insert(
                job.deadline.value(),
                self.jobs.len() as u32,
                job.exec.value(),
            );
            self.future_stack.push(self.jobs.len() as u32);
            Slot::Future
        };
        self.jobs.push(job);
        self.slots.push(slot);
        Feasibility::from(self.feasible())
    }

    /// Removes the most recently pushed job (strict LIFO) and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the timeline is empty.
    ///
    /// # Examples
    ///
    /// Backtracking over a placement attempt — push, observe the verdict,
    /// retract, and the earlier queue state is intact:
    ///
    /// ```
    /// use rtrm_platform::{ResourceKind, Time};
    /// use rtrm_sched::{EdfTimeline, JobKey, PlannedJob};
    ///
    /// let now = Time::ZERO;
    /// let mut timeline = EdfTimeline::new(ResourceKind::Gpu, now);
    /// let held = PlannedJob::new(JobKey(0), now, Time::new(4.0), Time::new(9.0));
    /// let probe = PlannedJob::new(JobKey(1), now, Time::new(6.0), Time::new(7.0));
    /// assert!(timeline.push(held).is_feasible());
    /// assert!(!timeline.push(probe).is_feasible(), "4 + 6 > 7");
    /// assert_eq!(timeline.undo().key, JobKey(1));
    /// assert!(timeline.feasible(), "the remaining queue is feasible again");
    /// assert_eq!(timeline.jobs().len(), 1);
    /// ```
    #[must_use = "the retracted job is the caller's to re-place or drop"]
    pub fn undo(&mut self) -> PlannedJob {
        let job = self.jobs.pop().expect("undo on an empty timeline");
        match self.slots.pop().expect("slots parallel jobs") {
            Slot::Tree => self
                .tree
                .remove(job.deadline.value(), self.jobs.len() as u32),
            Slot::Pinned => self.pinned = None,
            Slot::Future => {
                self.tree
                    .remove(job.deadline.value(), self.jobs.len() as u32);
                let idx = self
                    .future_stack
                    .pop()
                    .expect("future stack parallels future slots");
                debug_assert_eq!(idx as usize, self.jobs.len(), "undo is strict LIFO");
            }
        }
        job
    }

    /// Returns `true` if every job on the timeline meets its deadline —
    /// the same verdict as [`is_schedulable_with`] over
    /// [`jobs`](EdfTimeline::jobs).
    #[must_use]
    pub fn feasible(&mut self) -> bool {
        if self.oracle {
            return self.engine_feasible();
        }
        if !self.future_stack.is_empty() {
            // Preemptable queues answer future releases with the
            // demand-criterion sweep; non-preemptable dispatch suffers
            // scheduling anomalies the criterion does not model, so only
            // the engine is authoritative there.
            return if self.kind.is_preemptable() {
                self.segmented_feasible()
            } else {
                self.engine_feasible()
            };
        }
        if let Some(i) = self.pinned {
            // Mirror the engine's fast necessary condition exactly: the
            // pinned job's raw release participates even though dispatch
            // ignores it.
            let j = &self.jobs[i];
            if !(j.release.max(self.start) + j.exec).meets(j.deadline) {
                return false;
            }
        }
        let base = self.pinned.map_or(0.0, |i| self.jobs[i].exec.value());
        self.tree.root_min_gap() >= self.start.value() + base - TIME_EPSILON
    }

    /// Returns `true` if any job on the timeline is released after `now`
    /// (beyond [`TIME_EPSILON`]). O(1); the managers' defer logic keys on
    /// this instead of rescanning the queue.
    #[must_use]
    pub fn has_future(&self) -> bool {
        !self.future_stack.is_empty()
    }

    /// Number of verdicts answered by the from-scratch engine (memo hits
    /// included) instead of the incremental trees, since construction.
    /// Diagnostics: tests assert preemptable probes stay off the engine.
    #[must_use]
    pub fn engine_verdicts(&self) -> u64 {
        self.engine_verdicts
    }

    /// Demand-criterion verdict for a preemptable queue containing future
    /// releases: the `now` segment is read off the main treap root (it spans
    /// every job), then the future set is swept latest-release-first through
    /// the scratch deadline tree, checking one segment per insertion.
    fn segmented_feasible(&mut self) -> bool {
        debug_assert!(self.pinned.is_none(), "pinning is non-preemptable only");
        if self.tree.root_min_gap() < self.start.value() - TIME_EPSILON {
            return false;
        }
        // Destructure for disjoint borrows: the sort comparator reads `jobs`
        // while the sweep mutates `seg_tree`.
        let EdfTimeline {
            jobs,
            future_stack,
            seg_order,
            seg_tree,
            ..
        } = self;
        seg_order.clear();
        seg_order.extend_from_slice(future_stack);
        seg_order
            .sort_unstable_by(|&a, &b| jobs[b as usize].release.cmp(&jobs[a as usize].release));
        seg_tree.clear();
        for &idx in seg_order.iter() {
            let job = &jobs[idx as usize];
            seg_tree.insert(job.deadline.value(), idx, job.exec.value());
            // Checking after every insertion (not once per distinct release)
            // is equivalent: a partial release group only reports larger gaps
            // than the full group, whose own check still runs.
            if seg_tree.root_min_gap() < job.release.value() - TIME_EPSILON {
                return false;
            }
        }
        true
    }

    /// Probes `job` without retaining it: `push` + `undo`, returning the
    /// verdict. The caller's timeline is unchanged.
    ///
    /// # Panics
    ///
    /// As [`push`](EdfTimeline::push).
    #[must_use]
    pub fn fits(&mut self, job: PlannedJob) -> bool {
        let verdict = self.push(job).is_feasible();
        let _ = self.undo();
        verdict
    }

    /// From-scratch engine verdict over the retained queue, memoized by
    /// exact queue content.
    fn engine_feasible(&mut self) -> bool {
        self.engine_verdicts += 1;
        self.probe.clear();
        for j in &self.jobs {
            self.probe.push(j.release.value().to_bits());
            self.probe.push(j.exec.value().to_bits());
            self.probe.push(j.deadline.value().to_bits());
            self.probe.push(u64::from(j.pinned));
        }
        if let Some(&verdict) = self.memo.get(&self.probe) {
            return verdict;
        }
        let verdict = is_schedulable_with(self.kind, self.start, &self.jobs, &mut self.scratch);
        if self.memo.len() >= MEMO_CAP {
            self.memo.clear();
        }
        self.memo.insert(self.probe.clone(), verdict);
        verdict
    }
}

/// Arena-allocated treap over `(deadline, seq)` keys with subtree aggregates
/// `sum` (total exec) and `min_gap` (minimum of `deadline_u - E_u` over the
/// subtree, `E_u` the in-order exec prefix sum *within the subtree*).
///
/// `min_gap` composes under concatenation: for a node `v` with left subtree
/// `L` and right subtree `R`, the prefix of `v` is `sum(L) + exec_v` and
/// every gap in `R` shifts down by that amount, so
/// `min_gap(v) = min(min_gap(L), deadline_v - prefix_v, min_gap(R) - prefix_v)`.
#[derive(Debug, Clone)]
struct Treap {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    rng: u64,
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    deadline: f64,
    seq: u32,
    prio: u64,
    exec: f64,
    left: u32,
    right: u32,
    sum: f64,
    min_gap: f64,
}

impl Default for Treap {
    fn default() -> Self {
        Treap {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            // Any non-zero seed works; priorities only need to be
            // uncorrelated with insertion order. Deterministic so runs are
            // reproducible.
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Lexicographic `(deadline, seq)` order; deadlines by `total_cmp` so the
/// tree key order matches the engine's heap order bit for bit.
fn key_less(ad: f64, aseq: u32, bd: f64, bseq: u32) -> bool {
    match ad.total_cmp(&bd) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => aseq < bseq,
    }
}

impl Treap {
    fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
    }

    fn next_prio(&mut self) -> u64 {
        // xorshift64: cheap, deterministic, no external RNG dependency.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn sum(&self, v: u32) -> f64 {
        if v == NIL {
            0.0
        } else {
            self.nodes[v as usize].sum
        }
    }

    fn min_gap(&self, v: u32) -> f64 {
        if v == NIL {
            f64::INFINITY
        } else {
            self.nodes[v as usize].min_gap
        }
    }

    /// The queue-wide minimum of `deadline_u - E_u`, `+inf` when empty.
    fn root_min_gap(&self) -> f64 {
        self.min_gap(self.root)
    }

    /// Recomputes `v`'s aggregates from its children.
    fn pull(&mut self, v: u32) {
        let n = self.nodes[v as usize];
        let prefix = self.sum(n.left) + n.exec;
        let min_gap = self
            .min_gap(n.left)
            .min(n.deadline - prefix)
            .min(self.min_gap(n.right) - prefix);
        let sum = prefix + self.sum(n.right);
        let n = &mut self.nodes[v as usize];
        n.sum = sum;
        n.min_gap = min_gap;
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio > self.nodes[b as usize].prio {
            let merged = self.merge(self.nodes[a as usize].right, b);
            self.nodes[a as usize].right = merged;
            self.pull(a);
            a
        } else {
            let merged = self.merge(a, self.nodes[b as usize].left);
            self.nodes[b as usize].left = merged;
            self.pull(b);
            b
        }
    }

    /// Splits by key into (`< (d, seq)`, `>= (d, seq)`).
    fn split(&mut self, v: u32, d: f64, seq: u32) -> (u32, u32) {
        if v == NIL {
            return (NIL, NIL);
        }
        let n = self.nodes[v as usize];
        if key_less(n.deadline, n.seq, d, seq) {
            let (a, b) = self.split(n.right, d, seq);
            self.nodes[v as usize].right = a;
            self.pull(v);
            (v, b)
        } else {
            let (a, b) = self.split(n.left, d, seq);
            self.nodes[v as usize].left = b;
            self.pull(v);
            (a, v)
        }
    }

    fn insert(&mut self, deadline: f64, seq: u32, exec: f64) {
        let node = Node {
            deadline,
            seq,
            prio: self.next_prio(),
            exec,
            left: NIL,
            right: NIL,
            sum: exec,
            min_gap: deadline - exec,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        let (a, b) = self.split(self.root, deadline, seq);
        let left = self.merge(a, idx);
        self.root = self.merge(left, b);
    }

    fn remove(&mut self, deadline: f64, seq: u32) {
        let (a, rest) = self.split(self.root, deadline, seq);
        // `seq` is unique, so the exact-key slice is the single target node.
        let (target, c) = self.split(rest, deadline, seq + 1);
        debug_assert!(target != NIL, "removing a job that was never inserted");
        debug_assert!(
            self.nodes[target as usize].left == NIL && self.nodes[target as usize].right == NIL,
            "exact-key split must isolate one node"
        );
        self.free.push(target);
        self.root = self.merge(a, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_schedulable, JobKey};

    fn j(key: u64, release: f64, exec: f64, deadline: f64) -> PlannedJob {
        PlannedJob::new(
            JobKey(key),
            Time::new(release),
            Time::new(exec),
            Time::new(deadline),
        )
    }

    const T0: Time = Time::ZERO;

    #[test]
    fn dense_cpu_matches_engine() {
        let mut tl = EdfTimeline::new(ResourceKind::Cpu, T0);
        let jobs = [j(0, 0.0, 4.0, 100.0), j(1, 0.0, 2.0, 5.0)];
        for job in jobs {
            assert!(tl.push(job).is_feasible());
        }
        assert!(is_schedulable(ResourceKind::Cpu, T0, &jobs));
        // Tighten: a third job that overflows job 0's slack.
        let c = j(2, 0.0, 95.0, 100.0);
        assert!(!tl.push(c).is_feasible());
        assert!(!is_schedulable(
            ResourceKind::Cpu,
            T0,
            &[jobs[0], jobs[1], c]
        ));
        let _ = tl.undo();
        assert!(tl.feasible());
    }

    #[test]
    fn pinned_job_occupies_the_head() {
        let mut tl = EdfTimeline::new(ResourceKind::Gpu, T0);
        let mut running = j(0, 0.0, 4.0, 100.0);
        running.pinned = true;
        assert!(tl.push(running).is_feasible());
        // An urgent job cannot jump the pinned one: 4 + 1 > 2.
        assert!(!tl.push(j(1, 0.0, 1.0, 2.0)).is_feasible());
        let _ = tl.undo();
        assert!(tl.push(j(2, 0.0, 1.0, 5.0)).is_feasible());
    }

    #[test]
    fn future_release_on_cpu_stays_incremental() {
        let mut tl = EdfTimeline::new(ResourceKind::Cpu, T0);
        assert!(tl.push(j(0, 0.0, 10.0, 30.0)).is_feasible());
        // Released at 3 with deadline 6: preempts and fits (segment sweep).
        assert!(tl.push(j(1, 3.0, 2.0, 6.0)).is_feasible());
        assert!(tl.has_future());
        // Same but deadline 4: 3 + 2 > 4, infeasible.
        let _ = tl.undo();
        assert!(!tl.push(j(2, 3.0, 2.0, 4.0)).is_feasible());
        let _ = tl.undo();
        // Back to a dense queue: both trees restored.
        assert!(!tl.has_future());
        assert!(tl.feasible());
        assert_eq!(tl.len(), 1);
        assert_eq!(
            tl.engine_verdicts(),
            0,
            "preemptable future releases must never route through the engine"
        );
    }

    #[test]
    fn future_release_on_gpu_falls_back_to_engine() {
        let mut tl = EdfTimeline::new(ResourceKind::Gpu, T0);
        assert!(tl.push(j(0, 0.0, 10.0, 30.0)).is_feasible());
        // Non-preemptable: the future job waits for the running one, so a
        // release at 3 with deadline 6 cannot fit behind 10 units of work.
        assert!(!tl.push(j(1, 3.0, 2.0, 6.0)).is_feasible());
        assert!(
            tl.engine_verdicts() > 0,
            "GPU future releases use the engine"
        );
        let _ = tl.undo();
        assert!(tl.feasible());
    }

    #[test]
    fn epsilon_release_counts_as_dense() {
        // A release within TIME_EPSILON of `now` is "ready" to the engine;
        // the timeline must classify it identically (no future stack entry).
        let mut tl = EdfTimeline::new(ResourceKind::Cpu, T0);
        assert!(tl.push(j(0, TIME_EPSILON / 2.0, 2.0, 5.0)).is_feasible());
        assert!(!tl.has_future());
        assert_eq!(tl.engine_verdicts(), 0);
    }

    #[test]
    fn fits_leaves_timeline_unchanged() {
        let mut tl = EdfTimeline::new(ResourceKind::Gpu, T0);
        let _ = tl.push(j(0, 0.0, 3.0, 50.0));
        let before = tl.jobs().to_vec();
        assert!(tl.fits(j(1, 0.0, 3.0, 10.0)));
        assert!(!tl.fits(j(2, 0.0, 3.0, 2.0)));
        assert_eq!(tl.jobs(), &before[..]);
    }

    #[test]
    fn reset_keeps_memo_only_for_same_instant() {
        // Gpu: a future release is the one case that still memoizes engine
        // verdicts (preemptable future releases are answered incrementally).
        let mut tl = EdfTimeline::new(ResourceKind::Gpu, T0);
        let _ = tl.push(j(0, 2.0, 1.0, 10.0)); // future: engine + memo
        tl.reset(ResourceKind::Gpu, T0);
        assert!(tl.is_empty());
        assert_eq!(tl.memo.len(), 1, "same (kind, now): memo retained");
        tl.reset(ResourceKind::Gpu, Time::new(1.0));
        assert!(tl.memo.is_empty(), "different now: memo dropped");
    }

    #[test]
    fn oracle_mode_agrees() {
        let mut incremental = EdfTimeline::new(ResourceKind::Cpu, T0);
        let mut oracle = EdfTimeline::new(ResourceKind::Cpu, T0);
        oracle.set_oracle(true);
        for job in [
            j(0, 0.0, 2.0, 9.0),
            j(1, 0.0, 3.0, 4.0),
            j(2, 0.0, 3.5, 9.0),
        ] {
            assert_eq!(
                incremental.push(job).is_feasible(),
                oracle.push(job).is_feasible()
            );
        }
    }

    #[test]
    #[should_panic(expected = "undo on an empty timeline")]
    fn undo_empty_panics() {
        let mut tl = EdfTimeline::new(ResourceKind::Cpu, T0);
        let _ = tl.undo();
    }

    #[test]
    #[should_panic(expected = "at most one job may be pinned")]
    fn second_pinned_rejected() {
        let mut tl = EdfTimeline::new(ResourceKind::Gpu, T0);
        let mut a = j(0, 0.0, 1.0, 5.0);
        a.pinned = true;
        let mut b = j(1, 0.0, 1.0, 5.0);
        b.pinned = true;
        let _ = tl.push(a);
        let _ = tl.push(b);
    }

    #[test]
    fn interleaved_push_undo_tracks_tree_state() {
        // Regression shape: remove from the middle of the deadline order.
        let mut tl = EdfTimeline::new(ResourceKind::Cpu, T0);
        let _ = tl.push(j(0, 0.0, 1.0, 10.0));
        let _ = tl.push(j(1, 0.0, 1.0, 5.0));
        let _ = tl.push(j(2, 0.0, 1.0, 7.5));
        let popped = tl.undo();
        assert_eq!(popped.key, JobKey(2));
        // 1 + 4.5 > 5: the new job overflows the slack before its deadline.
        assert!(!tl.push(j(3, 0.0, 4.5, 5.0)).is_feasible());
        let _ = tl.undo();
        assert!(tl.feasible());
    }
}
