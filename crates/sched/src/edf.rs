//! Single-resource EDF timeline simulation.
//!
//! One engine serves both purposes of the paper's Sec 4:
//!
//! * **feasibility** — given a candidate mapping, does every job mapped to
//!   this resource finish by its deadline? (constraints (3)–(14) of the MILP,
//!   including the preemption caused by a future-released predicted task);
//! * **execution** — between two activations of the resource manager, the
//!   simulator advances each resource's timeline to the next arrival with the
//!   very same rules.
//!
//! The rules (paper Sec 4.1): on each resource, jobs run in EDF order.
//! Preemptable resources (CPUs) use preemptive EDF; since all *real* jobs are
//! released at the activation instant, preemption only ever occurs when a
//! future-released job (the predicted task, or an arrival delayed by
//! prediction overhead) shows up mid-window — exactly the paper's model.
//! Non-preemptable resources (GPUs) use work-conserving non-preemptive EDF,
//! and a job already running there is *pinned*: it completes before anything
//! else is dispatched.
//!
//! # Engine
//!
//! The timeline is advanced event-by-event over two binary heaps: a release
//! queue ordered by release time and a ready queue ordered by
//! `(deadline, input order)`. Each dispatch decision is O(log n) instead of
//! the O(n) scan of the obvious implementation, and the heaps live in a
//! caller-supplied [`EdfScratch`] so the feasibility oracle — called once per
//! candidate placement inside the managers' inner loops — performs no
//! allocation in steady state ([`simulate_into`] / [`is_schedulable_with`]).
//! The original scan-based implementation is retained verbatim in
//! [`reference`] as a differential-testing oracle; the two engines are
//! asserted equivalent on every outcome field by the property suite in
//! `tests/properties.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rtrm_platform::{ResourceKind, Time, TIME_EPSILON};

use crate::{JobOutcome, PlannedJob, Schedule};

/// Reusable state for the event-driven engine. Holding one of these across
/// calls to [`simulate_into`] / [`is_schedulable_with`] keeps the heap and
/// job-state buffers warm, so repeated feasibility checks allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct EdfScratch {
    /// Not-yet-released jobs, min-ordered by `(release, input order)`.
    release: BinaryHeap<Reverse<RelKey>>,
    /// Released, unfinished jobs, min-ordered by `(deadline, input order)`.
    ready: BinaryHeap<Reverse<ReadyKey>>,
    /// Per-job mutable state, in input order.
    live: Vec<LiveState>,
}

impl EdfScratch {
    /// Creates an empty scratch (equivalent to `EdfScratch::default()`).
    #[must_use]
    pub fn new() -> Self {
        EdfScratch::default()
    }
}

/// Release-queue key: earliest release first, ties by input order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RelKey {
    release: f64,
    idx: usize,
}

impl Eq for RelKey {}

impl Ord for RelKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.release
            .total_cmp(&other.release)
            .then(self.idx.cmp(&other.idx))
    }
}

impl PartialOrd for RelKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Ready-queue key: earliest deadline first, ties by input order — the EDF
/// dispatch order of Sec 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ReadyKey {
    deadline: Time,
    idx: usize,
}

#[derive(Debug, Clone, Copy)]
struct LiveState {
    remaining: f64,
    deadline: Time,
    executed: f64,
    started: bool,
    finish: Option<f64>,
}

/// Simulates one resource's timeline starting at `now`, up to `horizon`
/// (`None` = run until all jobs finish).
///
/// Returns one [`JobOutcome`] per input job, in input order. Jobs with
/// `release < now` are treated as released at `now`. Ties in deadline are
/// broken by input order, making the schedule deterministic.
///
/// # Panics
///
/// Panics if more than one job is pinned, if a pinned job is passed to a
/// preemptable resource (pinning is meaningless there — the job would simply
/// compete under EDF), or if any `exec` is negative.
///
/// # Examples
///
/// ```
/// use rtrm_platform::{ResourceKind, Time};
/// use rtrm_sched::{simulate, JobKey, PlannedJob};
///
/// let t = Time::new(0.0);
/// let jobs = [
///     PlannedJob::new(JobKey(0), t, Time::new(5.0), Time::new(20.0)),
///     // Released later with an earlier deadline: preempts job 0 on a CPU.
///     PlannedJob::new(JobKey(1), Time::new(2.0), Time::new(3.0), Time::new(6.0)),
/// ];
/// let schedule = simulate(ResourceKind::Cpu, t, &jobs, None);
/// assert_eq!(schedule.outcomes()[1].finish.unwrap(), Time::new(5.0));
/// assert_eq!(schedule.outcomes()[0].finish.unwrap(), Time::new(8.0));
/// ```
#[must_use]
pub fn simulate(
    kind: ResourceKind,
    now: Time,
    jobs: &[PlannedJob],
    horizon: Option<Time>,
) -> Schedule {
    let mut scratch = EdfScratch::new();
    let mut outcomes = Vec::new();
    simulate_into(kind, now, jobs, horizon, &mut scratch, &mut outcomes);
    Schedule::new(outcomes)
}

/// Allocation-free variant of [`simulate`]: runs the timeline in `scratch`
/// and replaces the contents of `out` with one [`JobOutcome`] per input job,
/// in input order. Semantics are identical to [`simulate`].
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_into(
    kind: ResourceKind,
    now: Time,
    jobs: &[PlannedJob],
    horizon: Option<Time>,
    scratch: &mut EdfScratch,
    out: &mut Vec<JobOutcome>,
) {
    validate(kind, jobs);
    run_engine(kind, now, jobs, horizon, scratch, false);
    out.clear();
    out.extend(scratch.live.iter().zip(jobs).map(|(l, j)| JobOutcome {
        key: j.key,
        executed: Time::new(l.executed),
        finish: l.finish.map(Time::new),
        started: l.started,
    }));
}

/// Returns `true` if every job finishes by its deadline when the set runs on
/// a resource of `kind` starting at `now`. This is the heuristic's
/// `IsSchedulable` test and the exact optimizer's feasibility oracle.
///
/// # Examples
///
/// ```
/// use rtrm_platform::{ResourceKind, Time};
/// use rtrm_sched::{is_schedulable, JobKey, PlannedJob};
///
/// let t = Time::new(0.0);
/// let jobs = [PlannedJob::new(JobKey(0), t, Time::new(4.0), Time::new(4.0))];
/// assert!(is_schedulable(ResourceKind::Cpu, t, &jobs));
/// ```
#[must_use]
pub fn is_schedulable(kind: ResourceKind, now: Time, jobs: &[PlannedJob]) -> bool {
    is_schedulable_with(kind, now, jobs, &mut EdfScratch::new())
}

/// Allocation-free variant of [`is_schedulable`]: runs the feasibility check
/// in `scratch`, and additionally aborts the timeline at the first deadline
/// miss instead of simulating the whole set to completion.
#[must_use]
pub fn is_schedulable_with(
    kind: ResourceKind,
    now: Time,
    jobs: &[PlannedJob],
    scratch: &mut EdfScratch,
) -> bool {
    // Fast necessary condition: no single job can fit more work than the
    // span between its release and deadline.
    for j in jobs {
        if !(j.release.max(now) + j.exec).meets(j.deadline) {
            return false;
        }
    }
    validate(kind, jobs);
    run_engine(kind, now, jobs, None, scratch, true)
}

fn validate(kind: ResourceKind, jobs: &[PlannedJob]) {
    let pinned = jobs.iter().filter(|j| j.pinned).count();
    assert!(pinned <= 1, "at most one job may be pinned per resource");
    assert!(
        pinned == 0 || kind == ResourceKind::Gpu,
        "pinning applies only to non-preemptable resources"
    );
    for j in jobs {
        assert!(j.exec >= Time::ZERO, "job exec must be non-negative");
    }
}

/// Runs the event loop. With `abort_on_miss`, returns `false` as soon as any
/// job completes past its deadline (only meaningful without a horizon, where
/// every job eventually completes); otherwise always returns `true`.
fn run_engine(
    kind: ResourceKind,
    start: Time,
    jobs: &[PlannedJob],
    horizon: Option<Time>,
    scratch: &mut EdfScratch,
    abort_on_miss: bool,
) -> bool {
    let horizon = horizon.map_or(f64::INFINITY, Time::value);
    let now = start.value();

    // A pinned job is physically occupying the resource: it is dispatched
    // ahead of everything (and outside the queues).
    let pinned = jobs.iter().position(|j| j.pinned);

    scratch.release.clear();
    scratch.ready.clear();
    scratch.live.clear();
    for (i, j) in jobs.iter().enumerate() {
        let release = j.release.max(start).value();
        scratch.live.push(LiveState {
            remaining: j.exec.value(),
            deadline: j.deadline,
            executed: 0.0,
            started: false,
            finish: None,
        });
        if Some(i) == pinned {
            continue;
        }
        // Same epsilon-tolerant predicate as `Time::released_by`: a release
        // within TIME_EPSILON of `now` is ready, and the timeline's
        // dense/future classification and the managers' defer logic key on
        // the identical comparison.
        if release <= now + TIME_EPSILON {
            scratch.ready.push(Reverse(ReadyKey {
                deadline: j.deadline,
                idx: i,
            }));
        } else {
            scratch.release.push(Reverse(RelKey { release, idx: i }));
        }
    }

    match kind {
        ResourceKind::Cpu => run_preemptive(now, horizon, scratch, abort_on_miss),
        ResourceKind::Gpu => run_non_preemptive(now, horizon, scratch, abort_on_miss, pinned),
    }
}

/// Moves every job released by `now` from the release queue to the ready
/// queue.
fn drain_released(scratch: &mut EdfScratch, now: f64) {
    while let Some(&Reverse(k)) = scratch.release.peek() {
        if k.release > now + TIME_EPSILON {
            break;
        }
        scratch.release.pop();
        scratch.ready.push(Reverse(ReadyKey {
            deadline: scratch.live[k.idx].deadline,
            idx: k.idx,
        }));
    }
}

/// Advances job `i` from `now` to `until`, marking completion (zero-length
/// jobs finish — and count as started — at dispatch). Returns `true` if the
/// job completed.
fn advance_job(live: &mut LiveState, now: &mut f64, until: f64) -> bool {
    let dt = (until - *now).min(live.remaining).max(0.0);
    if dt > 0.0 {
        live.started = true;
        live.executed += dt;
        live.remaining -= dt;
        *now += dt;
    }
    if live.remaining <= TIME_EPSILON {
        live.remaining = 0.0;
        live.started = true;
        live.finish = Some(*now);
        return true;
    }
    false
}

fn run_preemptive(
    mut now: f64,
    horizon: f64,
    scratch: &mut EdfScratch,
    abort_on_miss: bool,
) -> bool {
    loop {
        if now >= horizon - TIME_EPSILON {
            break;
        }
        let Some(&Reverse(top)) = scratch.ready.peek() else {
            // Idle: jump to the next release, if any.
            match scratch.release.peek() {
                Some(&Reverse(k)) if k.release < horizon => {
                    now = k.release;
                    drain_released(scratch, now);
                    continue;
                }
                _ => break,
            }
        };
        // Run the EDF job until it finishes, the horizon, or the next
        // release (which may preempt it). A partially-run job keeps its
        // heap position: its key `(deadline, input order)` never changes.
        let i = top.idx;
        let next_release = scratch
            .release
            .peek()
            .map_or(f64::INFINITY, |&Reverse(k)| k.release);
        let until = horizon
            .min(now + scratch.live[i].remaining)
            .min(next_release);
        if advance_job(&mut scratch.live[i], &mut now, until) {
            scratch.ready.pop();
            if abort_on_miss && !Time::new(now).meets(scratch.live[i].deadline) {
                return false;
            }
        }
        drain_released(scratch, now);
    }
    true
}

fn run_non_preemptive(
    mut now: f64,
    horizon: f64,
    scratch: &mut EdfScratch,
    abort_on_miss: bool,
    pinned: Option<usize>,
) -> bool {
    // Dispatch the pinned job to completion before anything else.
    if let Some(i) = pinned {
        if now >= horizon - TIME_EPSILON {
            return true;
        }
        let until = horizon.min(now + scratch.live[i].remaining);
        if !advance_job(&mut scratch.live[i], &mut now, until) {
            // Hit the horizon mid-job: it stays on the resource; nothing
            // else runs.
            return true;
        }
        if abort_on_miss && !Time::new(now).meets(scratch.live[i].deadline) {
            return false;
        }
        drain_released(scratch, now);
    }

    loop {
        if now >= horizon - TIME_EPSILON {
            break;
        }
        let Some(Reverse(top)) = scratch.ready.pop() else {
            match scratch.release.peek() {
                Some(&Reverse(k)) if k.release < horizon => {
                    now = k.release;
                    drain_released(scratch, now);
                    continue;
                }
                _ => break,
            }
        };
        // Non-preemptive: once dispatched, run to completion (or horizon).
        let i = top.idx;
        let until = horizon.min(now + scratch.live[i].remaining);
        if !advance_job(&mut scratch.live[i], &mut now, until) {
            // Hit the horizon mid-job: nothing else runs.
            break;
        }
        if abort_on_miss && !Time::new(now).meets(scratch.live[i].deadline) {
            return false;
        }
        drain_released(scratch, now);
    }
    true
}

pub mod reference {
    //! The original O(n²) scan-based EDF engine, kept verbatim as a
    //! differential-testing oracle for the event-driven engine (and as the
    //! baseline for the `edf_is_schedulable` benchmark sweep). Use the
    //! crate-root [`simulate`](super::simulate) /
    //! [`is_schedulable`](super::is_schedulable) in production code.

    use rtrm_platform::{ResourceKind, Time, TIME_EPSILON};

    use crate::{JobOutcome, PlannedJob, Schedule};

    /// Scan-based counterpart of [`simulate`](super::simulate); identical
    /// semantics, O(n) work per dispatch event.
    ///
    /// # Panics
    ///
    /// As [`simulate`](super::simulate).
    #[must_use]
    pub fn simulate(
        kind: ResourceKind,
        now: Time,
        jobs: &[PlannedJob],
        horizon: Option<Time>,
    ) -> Schedule {
        super::validate(kind, jobs);
        match kind {
            ResourceKind::Cpu => simulate_preemptive(now, jobs, horizon),
            ResourceKind::Gpu => simulate_non_preemptive(now, jobs, horizon),
        }
    }

    /// Scan-based counterpart of [`is_schedulable`](super::is_schedulable).
    #[must_use]
    pub fn is_schedulable(kind: ResourceKind, now: Time, jobs: &[PlannedJob]) -> bool {
        for j in jobs {
            if !(j.release.max(now) + j.exec).meets(j.deadline) {
                return false;
            }
        }
        simulate(kind, now, jobs, None).all_meet_deadlines(jobs)
    }

    struct Live {
        release: f64,
        remaining: f64,
        deadline: Time,
        outcome: JobOutcome,
    }

    fn make_live(now: Time, jobs: &[PlannedJob]) -> Vec<Live> {
        jobs.iter()
            .map(|j| Live {
                release: j.release.max(now).value(),
                remaining: j.exec.value(),
                deadline: j.deadline,
                outcome: JobOutcome {
                    key: j.key,
                    executed: Time::ZERO,
                    finish: None,
                    started: false,
                },
            })
            .collect()
    }

    /// Picks the released, unfinished job with the earliest deadline
    /// (ties: input order). Returns its index.
    fn pick_edf(live: &[Live], now: f64) -> Option<usize> {
        live.iter()
            .enumerate()
            .filter(|(_, j)| j.outcome.finish.is_none() && j.release <= now + TIME_EPSILON)
            .min_by(|(ai, a), (bi, b)| a.deadline.cmp(&b.deadline).then(ai.cmp(bi)))
            .map(|(i, _)| i)
    }

    /// Earliest release among unfinished, not-yet-released jobs.
    fn next_release(live: &[Live], now: f64) -> Option<f64> {
        live.iter()
            .filter(|j| j.outcome.finish.is_none() && j.release > now + TIME_EPSILON)
            .map(|j| j.release)
            .min_by(f64::total_cmp)
    }

    fn run_job(job: &mut Live, now: &mut f64, until: f64) {
        let dt = (until - *now).min(job.remaining).max(0.0);
        if dt > 0.0 {
            job.outcome.started = true;
            job.outcome.executed += Time::new(dt);
            job.remaining -= dt;
            *now += dt;
        }
        if job.remaining <= TIME_EPSILON {
            job.remaining = 0.0;
            // Zero-length jobs count as finished (and started) at dispatch.
            job.outcome.started = true;
            job.outcome.finish = Some(Time::new(*now));
        }
    }

    fn simulate_preemptive(start: Time, jobs: &[PlannedJob], horizon: Option<Time>) -> Schedule {
        let mut live = make_live(start, jobs);
        let horizon = horizon.map_or(f64::INFINITY, Time::value);
        let mut now = start.value();

        loop {
            if now >= horizon - TIME_EPSILON {
                break;
            }
            let Some(current) = pick_edf(&live, now) else {
                // Idle: jump to the next release, if any.
                match next_release(&live, now) {
                    Some(r) if r < horizon => {
                        now = r;
                        continue;
                    }
                    _ => break,
                }
            };
            // Run the EDF job until it finishes, the horizon, or the next
            // release (which may preempt it).
            let until = horizon
                .min(now + live[current].remaining)
                .min(next_release(&live, now).unwrap_or(f64::INFINITY));
            run_job(&mut live[current], &mut now, until);
        }
        Schedule::new(live.into_iter().map(|j| j.outcome).collect())
    }

    fn simulate_non_preemptive(
        start: Time,
        jobs: &[PlannedJob],
        horizon: Option<Time>,
    ) -> Schedule {
        let mut live = make_live(start, jobs);
        let horizon = horizon.map_or(f64::INFINITY, Time::value);
        let mut now = start.value();

        // A pinned job is physically occupying the resource: dispatch it
        // first.
        let mut forced = jobs.iter().position(|j| j.pinned);

        loop {
            if now >= horizon - TIME_EPSILON {
                break;
            }
            let current = match forced.take() {
                Some(i) if live[i].outcome.finish.is_none() => i,
                _ => match pick_edf(&live, now) {
                    Some(i) => i,
                    None => match next_release(&live, now) {
                        Some(r) if r < horizon => {
                            now = r;
                            continue;
                        }
                        _ => break,
                    },
                },
            };
            // Non-preemptive: once dispatched, run to completion (or
            // horizon).
            let until = horizon.min(now + live[current].remaining);
            run_job(&mut live[current], &mut now, until);
            if live[current].outcome.finish.is_none() {
                // Hit the horizon mid-job: it stays on the resource;
                // remember so a resumed simulation would pin it. Nothing
                // else runs.
                break;
            }
        }
        Schedule::new(live.into_iter().map(|j| j.outcome).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JobKey;

    fn j(key: u64, release: f64, exec: f64, deadline: f64) -> PlannedJob {
        PlannedJob::new(
            JobKey(key),
            Time::new(release),
            Time::new(exec),
            Time::new(deadline),
        )
    }

    const T0: Time = Time::ZERO;

    #[test]
    fn cpu_edf_orders_by_deadline() {
        let jobs = [j(0, 0.0, 4.0, 100.0), j(1, 0.0, 2.0, 5.0)];
        let s = simulate(ResourceKind::Cpu, T0, &jobs, None);
        assert_eq!(s.outcomes()[1].finish.unwrap(), Time::new(2.0));
        assert_eq!(s.outcomes()[0].finish.unwrap(), Time::new(6.0));
        assert!(s.all_meet_deadlines(&jobs));
    }

    #[test]
    fn cpu_future_release_preempts() {
        let jobs = [j(0, 0.0, 10.0, 30.0), j(1, 3.0, 2.0, 6.0)];
        let s = simulate(ResourceKind::Cpu, T0, &jobs, None);
        // Job 0 runs [0,3), job 1 preempts [3,5), job 0 resumes [5,12).
        assert_eq!(s.outcomes()[1].finish.unwrap(), Time::new(5.0));
        assert_eq!(s.outcomes()[0].finish.unwrap(), Time::new(12.0));
    }

    #[test]
    fn cpu_later_deadline_does_not_preempt() {
        let jobs = [j(0, 0.0, 10.0, 11.0), j(1, 3.0, 2.0, 50.0)];
        let s = simulate(ResourceKind::Cpu, T0, &jobs, None);
        assert_eq!(s.outcomes()[0].finish.unwrap(), Time::new(10.0));
        assert_eq!(s.outcomes()[1].finish.unwrap(), Time::new(12.0));
    }

    #[test]
    fn gpu_never_preempts() {
        let jobs = [j(0, 0.0, 10.0, 30.0), j(1, 3.0, 2.0, 9.0)];
        let s = simulate(ResourceKind::Gpu, T0, &jobs, None);
        // Job 1 must wait for job 0 even though its deadline is earlier.
        assert_eq!(s.outcomes()[0].finish.unwrap(), Time::new(10.0));
        assert_eq!(s.outcomes()[1].finish.unwrap(), Time::new(12.0));
        assert!(!s.all_meet_deadlines(&jobs));
    }

    #[test]
    fn gpu_pinned_runs_first() {
        let mut running = j(0, 0.0, 4.0, 100.0);
        running.pinned = true;
        let urgent = j(1, 0.0, 1.0, 2.0);
        let s = simulate(ResourceKind::Gpu, T0, &[running, urgent], None);
        assert_eq!(s.outcomes()[0].finish.unwrap(), Time::new(4.0));
        assert_eq!(s.outcomes()[1].finish.unwrap(), Time::new(5.0));
    }

    #[test]
    fn gpu_dispatch_is_edf_among_released() {
        let jobs = [j(0, 0.0, 3.0, 50.0), j(1, 0.0, 3.0, 10.0)];
        let s = simulate(ResourceKind::Gpu, T0, &jobs, None);
        assert_eq!(s.outcomes()[1].finish.unwrap(), Time::new(3.0));
        assert_eq!(s.outcomes()[0].finish.unwrap(), Time::new(6.0));
    }

    #[test]
    fn horizon_truncates_execution() {
        let jobs = [j(0, 0.0, 10.0, 30.0)];
        let s = simulate(ResourceKind::Cpu, T0, &jobs, Some(Time::new(4.0)));
        let o = s.outcomes()[0];
        assert_eq!(o.executed, Time::new(4.0));
        assert!(o.finish.is_none());
        assert!(o.started);
    }

    #[test]
    fn idle_gap_before_future_release() {
        let jobs = [j(0, 5.0, 2.0, 10.0)];
        let s = simulate(ResourceKind::Cpu, T0, &jobs, None);
        assert_eq!(s.outcomes()[0].finish.unwrap(), Time::new(7.0));
    }

    #[test]
    fn horizon_before_release_executes_nothing() {
        let jobs = [j(0, 5.0, 2.0, 10.0)];
        let s = simulate(ResourceKind::Cpu, T0, &jobs, Some(Time::new(3.0)));
        assert_eq!(s.outcomes()[0].executed, Time::ZERO);
        assert!(!s.outcomes()[0].started);
    }

    #[test]
    fn empty_job_set() {
        let s = simulate(ResourceKind::Cpu, T0, &[], None);
        assert!(s.outcomes().is_empty());
        assert_eq!(s.makespan(), None);
    }

    #[test]
    fn zero_exec_finishes_at_release() {
        let jobs = [j(0, 2.0, 0.0, 10.0)];
        let s = simulate(ResourceKind::Gpu, T0, &jobs, None);
        assert_eq!(s.outcomes()[0].finish.unwrap(), Time::new(2.0));
    }

    #[test]
    fn deadline_tie_broken_by_input_order() {
        let jobs = [j(7, 0.0, 2.0, 10.0), j(3, 0.0, 2.0, 10.0)];
        let s = simulate(ResourceKind::Cpu, T0, &jobs, None);
        assert_eq!(s.outcomes()[0].finish.unwrap(), Time::new(2.0));
        assert_eq!(s.outcomes()[1].finish.unwrap(), Time::new(4.0));
    }

    #[test]
    fn is_schedulable_quick_reject() {
        // Deadline shorter than exec: infeasible anywhere.
        assert!(!is_schedulable(
            ResourceKind::Cpu,
            T0,
            &[j(0, 0.0, 5.0, 4.0)]
        ));
    }

    #[test]
    fn is_schedulable_accepts_exact_fit() {
        let jobs = [j(0, 0.0, 4.0, 4.0), j(1, 0.0, 3.0, 7.0)];
        assert!(is_schedulable(ResourceKind::Cpu, T0, &jobs));
    }

    #[test]
    fn nonzero_start_time() {
        let t = Time::new(100.0);
        let jobs = [j(0, 0.0, 2.0, 103.0)]; // release clamps to `now`
        let s = simulate(ResourceKind::Cpu, t, &jobs, None);
        assert_eq!(s.outcomes()[0].finish.unwrap(), Time::new(102.0));
    }

    #[test]
    #[should_panic(expected = "at most one job may be pinned")]
    fn two_pinned_jobs_rejected() {
        let mut a = j(0, 0.0, 1.0, 5.0);
        let mut b = j(1, 0.0, 1.0, 5.0);
        a.pinned = true;
        b.pinned = true;
        let _ = simulate(ResourceKind::Gpu, T0, &[a, b], None);
    }

    #[test]
    #[should_panic(expected = "non-preemptable resources")]
    fn pinned_on_cpu_rejected() {
        let mut a = j(0, 0.0, 1.0, 5.0);
        a.pinned = true;
        let _ = simulate(ResourceKind::Cpu, T0, &[a], None);
    }

    #[test]
    fn gpu_horizon_mid_job() {
        let jobs = [j(0, 0.0, 10.0, 30.0), j(1, 0.0, 1.0, 40.0)];
        let s = simulate(ResourceKind::Gpu, T0, &jobs, Some(Time::new(4.0)));
        assert_eq!(s.outcomes()[0].executed, Time::new(4.0));
        assert_eq!(s.outcomes()[1].executed, Time::ZERO);
    }

    #[test]
    fn scratch_is_reusable_across_calls() {
        let mut scratch = EdfScratch::new();
        let mut out = Vec::new();
        let jobs_a = [j(0, 0.0, 4.0, 100.0), j(1, 0.0, 2.0, 5.0)];
        simulate_into(ResourceKind::Cpu, T0, &jobs_a, None, &mut scratch, &mut out);
        assert_eq!(out[1].finish.unwrap(), Time::new(2.0));
        // Different job set, same scratch: no state may leak.
        let jobs_b = [j(5, 5.0, 2.0, 10.0)];
        simulate_into(ResourceKind::Cpu, T0, &jobs_b, None, &mut scratch, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].finish.unwrap(), Time::new(7.0));
        assert!(is_schedulable_with(
            ResourceKind::Cpu,
            T0,
            &jobs_a,
            &mut scratch
        ));
        assert!(!is_schedulable_with(
            ResourceKind::Gpu,
            T0,
            &[j(0, 0.0, 10.0, 30.0), j(1, 3.0, 2.0, 9.0)],
            &mut scratch
        ));
    }

    #[test]
    fn is_schedulable_with_matches_simulate_verdict() {
        // A future release preempting mid-window: schedulable set.
        let jobs = [j(0, 0.0, 10.0, 30.0), j(1, 3.0, 2.0, 6.0)];
        let mut scratch = EdfScratch::new();
        assert!(is_schedulable_with(
            ResourceKind::Cpu,
            T0,
            &jobs,
            &mut scratch
        ));
        assert!(simulate(ResourceKind::Cpu, T0, &jobs, None).all_meet_deadlines(&jobs));
        // Tighten job 0's deadline so the preemption makes it miss.
        let jobs = [j(0, 0.0, 10.0, 11.0), j(1, 3.0, 2.0, 6.0)];
        assert!(!is_schedulable_with(
            ResourceKind::Cpu,
            T0,
            &jobs,
            &mut scratch
        ));
        assert!(!simulate(ResourceKind::Cpu, T0, &jobs, None).all_meet_deadlines(&jobs));
    }
}
