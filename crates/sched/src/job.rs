//! Jobs as seen by the timeline engine, and per-job schedule outcomes.

use serde::{Deserialize, Serialize};

use rtrm_platform::Time;

/// Opaque key identifying a job across the scheduler and the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct JobKey(pub u64);

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// One job to be placed on a single resource's timeline.
///
/// `exec` is the paper's `cpm_{j,i}`: the remaining worst-case execution time
/// on this resource, already including any migration time overhead. All
/// quantities are absolute times except `exec`, which is a duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedJob {
    /// Identity, echoed back in the [`Schedule`](crate::Schedule).
    pub key: JobKey,
    /// Earliest time the job may execute. Active jobs are released at the
    /// activation instant; the predicted task at its predicted arrival; an
    /// arriving task delayed by prediction overhead at `arrival + overhead`.
    pub release: Time,
    /// Remaining worst-case execution time on this resource (incl. migration
    /// time overhead).
    pub exec: Time,
    /// Absolute deadline.
    pub deadline: Time,
    /// `true` if the job is physically mid-execution on this resource and the
    /// resource is non-preemptable, so it must run to completion before
    /// anything else is dispatched there. At most one job per resource may be
    /// pinned.
    pub pinned: bool,
}

impl PlannedJob {
    /// Convenience constructor for an unpinned job.
    #[must_use]
    pub fn new(key: JobKey, release: Time, exec: Time, deadline: Time) -> Self {
        PlannedJob {
            key,
            release,
            exec,
            deadline,
            pinned: false,
        }
    }
}

/// What happened to one job within the simulated window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Identity of the job this outcome belongs to.
    pub key: JobKey,
    /// Work executed inside the window.
    pub executed: Time,
    /// Completion time, if the job finished inside the window.
    pub finish: Option<Time>,
    /// `true` if the job received any processor time in the window.
    pub started: bool,
}

impl JobOutcome {
    /// Returns `true` if the job finished no later than `deadline`.
    #[must_use]
    pub fn meets(&self, deadline: Time) -> bool {
        self.finish.is_some_and(|f| f.meets(deadline))
    }
}

/// The outcome of simulating one resource's timeline: one [`JobOutcome`] per
/// input job, in input order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    outcomes: Vec<JobOutcome>,
}

impl Schedule {
    pub(crate) fn new(outcomes: Vec<JobOutcome>) -> Self {
        Schedule { outcomes }
    }

    /// Per-job outcomes, in the order the jobs were passed in.
    #[must_use]
    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Returns `true` if every job finished by its deadline.
    ///
    /// `jobs` must be the same slice the schedule was computed from.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` has a different length than the schedule.
    #[must_use]
    pub fn all_meet_deadlines(&self, jobs: &[PlannedJob]) -> bool {
        assert_eq!(jobs.len(), self.outcomes.len(), "job/outcome mismatch");
        self.outcomes
            .iter()
            .zip(jobs)
            .all(|(o, j)| o.meets(j.deadline))
    }

    /// The latest completion time in the window, or `None` if nothing
    /// finished.
    #[must_use]
    pub fn makespan(&self) -> Option<Time> {
        self.outcomes.iter().filter_map(|o| o.finish).max()
    }
}
