//! # rtrm-sched
//!
//! Single-resource EDF timeline engine for heterogeneous platforms:
//! preemptive EDF on CPUs, work-conserving non-preemptive EDF on GPUs, with
//! support for future job releases (the predicted task of *Niknafs et al.,
//! DAC 2019*, or arrivals delayed by prediction overhead) and for pinning the
//! job currently occupying a non-preemptable resource.
//!
//! The same engine answers feasibility queries for the resource managers
//! ([`is_schedulable`]) and advances execution between manager activations in
//! the simulator ([`simulate`] with a horizon).
//!
//! # Examples
//!
//! ```
//! use rtrm_platform::{ResourceKind, Time};
//! use rtrm_sched::{is_schedulable, JobKey, PlannedJob};
//!
//! let now = Time::new(0.0);
//! let queue = [
//!     PlannedJob::new(JobKey(0), now, Time::new(3.0), Time::new(5.0)),
//!     PlannedJob::new(JobKey(1), now, Time::new(4.0), Time::new(7.0)),
//! ];
//! assert!(is_schedulable(ResourceKind::Cpu, now, &queue));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod edf;
mod job;
mod timeline;

pub use edf::{
    is_schedulable, is_schedulable_with, reference, simulate, simulate_into, EdfScratch,
};
pub use job::{JobKey, JobOutcome, PlannedJob, Schedule};
pub use timeline::{EdfTimeline, Feasibility};
