//! Property-based tests for the EDF timeline engine.

use proptest::prelude::*;
use rtrm_platform::{ResourceKind, Time, TIME_EPSILON};
use rtrm_sched::{is_schedulable, simulate, JobKey, PlannedJob};

fn synchronous_jobs() -> impl Strategy<Value = Vec<PlannedJob>> {
    prop::collection::vec((0.1f64..50.0, 0.1f64..200.0), 1..10).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (exec, deadline))| {
                PlannedJob::new(
                    JobKey(i as u64),
                    Time::ZERO,
                    Time::new(exec),
                    Time::new(deadline),
                )
            })
            .collect()
    })
}

fn staggered_jobs() -> impl Strategy<Value = Vec<PlannedJob>> {
    prop::collection::vec((0.0f64..30.0, 0.1f64..50.0, 0.1f64..200.0), 1..10).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (release, exec, rel_deadline))| {
                PlannedJob::new(
                    JobKey(i as u64),
                    Time::new(release),
                    Time::new(exec),
                    Time::new(release + rel_deadline),
                )
            })
            .collect()
    })
}

/// For synchronous release, EDF feasibility on one resource is exactly the
/// sorted-by-deadline prefix-sum test (the paper's constraint (3)).
fn prefix_sum_feasible(jobs: &[PlannedJob]) -> bool {
    let mut sorted: Vec<_> = jobs.iter().collect();
    sorted.sort_by_key(|a| a.deadline);
    let mut acc = 0.0;
    for j in sorted {
        acc += j.exec.value();
        if acc > j.deadline.value() + TIME_EPSILON {
            return false;
        }
    }
    true
}

proptest! {
    #[test]
    fn synchronous_cpu_feasibility_matches_prefix_sums(jobs in synchronous_jobs()) {
        let expected = prefix_sum_feasible(&jobs);
        prop_assert_eq!(is_schedulable(ResourceKind::Cpu, Time::ZERO, &jobs), expected);
    }

    /// With synchronous release there is nothing to preempt, so the GPU
    /// (non-preemptive EDF) behaves identically to the CPU.
    #[test]
    fn synchronous_gpu_matches_cpu(jobs in synchronous_jobs()) {
        let cpu = simulate(ResourceKind::Cpu, Time::ZERO, &jobs, None);
        let gpu = simulate(ResourceKind::Gpu, Time::ZERO, &jobs, None);
        prop_assert_eq!(cpu.outcomes(), gpu.outcomes());
    }

    /// Work conservation: with all jobs released at the start, total executed
    /// work up to any horizon equals min(total work, horizon).
    #[test]
    fn work_conserving(jobs in synchronous_jobs(), horizon in 0.1f64..500.0) {
        for kind in [ResourceKind::Cpu, ResourceKind::Gpu] {
            let s = simulate(kind, Time::ZERO, &jobs, Some(Time::new(horizon)));
            let executed: f64 = s.outcomes().iter().map(|o| o.executed.value()).sum();
            let total: f64 = jobs.iter().map(|j| j.exec.value()).sum();
            prop_assert!((executed - total.min(horizon)).abs() < 1e-6,
                "kind={kind:?} executed={executed} expected={}", total.min(horizon));
        }
    }

    /// No job ever runs before its release, executes more than its demand,
    /// or finishes before `release + exec`.
    #[test]
    fn release_and_demand_respected(jobs in staggered_jobs()) {
        for kind in [ResourceKind::Cpu, ResourceKind::Gpu] {
            let s = simulate(kind, Time::ZERO, &jobs, None);
            for (o, j) in s.outcomes().iter().zip(&jobs) {
                prop_assert!(o.executed <= j.exec + Time::new(1e-9));
                if let Some(f) = o.finish {
                    prop_assert!(f >= j.release + j.exec - Time::new(1e-6));
                    prop_assert!((o.executed.value() - j.exec.value()).abs() < 1e-6);
                }
            }
        }
    }

    /// Preemptive EDF is optimal on one processor: if *any* schedule meets
    /// all deadlines, EDF does. We check the contrapositive against an
    /// exhaustive search over non-preemptive orders for small sets — if some
    /// order is feasible, preemptive EDF must be feasible too.
    #[test]
    fn edf_dominates_any_order(jobs in prop::collection::vec((0.0f64..10.0, 0.1f64..10.0, 0.1f64..40.0), 1..6)) {
        let jobs: Vec<PlannedJob> = jobs.into_iter().enumerate().map(|(i, (r, e, d))| {
            PlannedJob::new(JobKey(i as u64), Time::new(r), Time::new(e), Time::new(r + d))
        }).collect();

        // Exhaustive non-preemptive order search.
        fn any_order_feasible(jobs: &[PlannedJob], done: &mut Vec<bool>, t: f64) -> bool {
            if done.iter().all(|d| *d) {
                return true;
            }
            for i in 0..jobs.len() {
                if done[i] {
                    continue;
                }
                let start = t.max(jobs[i].release.value());
                let finish = start + jobs[i].exec.value();
                if finish <= jobs[i].deadline.value() + TIME_EPSILON {
                    done[i] = true;
                    if any_order_feasible(jobs, done, finish) {
                        done[i] = false;
                        return true;
                    }
                    done[i] = false;
                }
            }
            false
        }

        let mut done = vec![false; jobs.len()];
        if any_order_feasible(&jobs, &mut done, 0.0) {
            prop_assert!(is_schedulable(ResourceKind::Cpu, Time::ZERO, &jobs));
        }
    }

    /// Simulating in two chunks (to an intermediate horizon, then resuming
    /// with reduced remaining work) matches one uninterrupted run on a CPU.
    #[test]
    fn horizon_split_is_consistent(jobs in synchronous_jobs(), split in 0.5f64..100.0) {
        let full = simulate(ResourceKind::Cpu, Time::ZERO, &jobs, None);
        let first = simulate(ResourceKind::Cpu, Time::ZERO, &jobs, Some(Time::new(split)));
        let resumed: Vec<PlannedJob> = jobs
            .iter()
            .zip(first.outcomes())
            .filter(|(_, o)| o.finish.is_none())
            .map(|(job, o)| PlannedJob::new(job.key, Time::new(split), job.exec - o.executed, job.deadline))
            .collect();
        let second = simulate(ResourceKind::Cpu, Time::new(split), &resumed, None);
        for (o2, job) in second.outcomes().iter().zip(&resumed) {
            let f_full = full
                .outcomes()
                .iter()
                .find(|o| o.key == job.key)
                .and_then(|o| o.finish)
                .expect("full run finishes everything");
            let f2 = o2.finish.expect("resumed run finishes everything");
            prop_assert!((f_full.value() - f2.value()).abs() < 1e-6,
                "key={:?} full={} resumed={}", job.key, f_full, f2);
        }
    }
}

// ---------------------------------------------------------------------------
// Differential tests: event-driven engine vs the scan-based reference oracle
// (`rtrm_sched::reference`). The two must agree on every outcome field —
// finish instants, executed work, started flags — not just feasibility.
// ---------------------------------------------------------------------------

use rtrm_sched::{is_schedulable_with, reference, simulate_into, EdfScratch};

/// Jobs exercising every engine edge: future releases (preemption on CPUs,
/// idle gaps), zero-length jobs (finish at dispatch), deadline ties (broken
/// by input order via a coarse deadline grid), and infeasibly tight sets.
fn adversarial_jobs() -> impl Strategy<Value = Vec<PlannedJob>> {
    prop::collection::vec(
        (
            prop_oneof![Just(0.0f64), 0.0f64..30.0],
            prop_oneof![Just(0.0f64), 0.0f64..20.0],
            1u32..12,
        ),
        1..12,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (release, exec, deadline_step))| {
                PlannedJob::new(
                    JobKey(i as u64),
                    Time::new(release),
                    Time::new(exec),
                    // Coarse grid => frequent exact deadline ties.
                    Time::new(release + f64::from(deadline_step) * 5.0),
                )
            })
            .collect()
    })
}

proptest! {
    /// CPU timelines (preemption, idle jumps, horizon truncation) are
    /// bit-identical between the two engines.
    #[test]
    fn engine_matches_reference_cpu(
        jobs in adversarial_jobs(),
        horizon in prop::option::of(0.5f64..150.0),
    ) {
        let horizon = horizon.map(Time::new);
        let fast = simulate(ResourceKind::Cpu, Time::ZERO, &jobs, horizon);
        let oracle = reference::simulate(ResourceKind::Cpu, Time::ZERO, &jobs, horizon);
        prop_assert_eq!(fast.outcomes(), oracle.outcomes());
    }

    /// GPU timelines — non-preemptive dispatch, optional pinned job run
    /// ahead of everything, horizon landing mid-job — are bit-identical.
    #[test]
    fn engine_matches_reference_gpu(
        jobs in adversarial_jobs(),
        pin_first in any::<bool>(),
        horizon in prop::option::of(0.5f64..150.0),
    ) {
        let mut jobs = jobs;
        if pin_first {
            jobs[0].pinned = true;
        }
        let horizon = horizon.map(Time::new);
        let fast = simulate(ResourceKind::Gpu, Time::ZERO, &jobs, horizon);
        let oracle = reference::simulate(ResourceKind::Gpu, Time::ZERO, &jobs, horizon);
        prop_assert_eq!(fast.outcomes(), oracle.outcomes());
    }

    /// The allocation-free entry point, with its scratch reused across
    /// resource kinds and job sets, matches the allocating API exactly.
    #[test]
    fn simulate_into_matches_simulate(
        jobs in adversarial_jobs(),
        horizon in prop::option::of(0.5f64..150.0),
    ) {
        let horizon = horizon.map(Time::new);
        let mut scratch = EdfScratch::new();
        let mut out = Vec::new();
        for kind in [ResourceKind::Cpu, ResourceKind::Gpu] {
            simulate_into(kind, Time::ZERO, &jobs, horizon, &mut scratch, &mut out);
            let allocating = simulate(kind, Time::ZERO, &jobs, horizon);
            prop_assert_eq!(&out[..], allocating.outcomes());
        }
    }

    /// The early-abort feasibility check agrees with simulating the whole
    /// set and checking every deadline, and with the reference oracle.
    #[test]
    fn feasibility_agrees_with_full_simulation(jobs in adversarial_jobs()) {
        let mut scratch = EdfScratch::new();
        for kind in [ResourceKind::Cpu, ResourceKind::Gpu] {
            let fast = is_schedulable_with(kind, Time::ZERO, &jobs, &mut scratch);
            let simulated = simulate(kind, Time::ZERO, &jobs, None).all_meet_deadlines(&jobs);
            prop_assert_eq!(fast, simulated);
            prop_assert_eq!(fast, is_schedulable(kind, Time::ZERO, &jobs));
            prop_assert_eq!(fast, reference::is_schedulable(kind, Time::ZERO, &jobs));
        }
    }
}
