//! Differential property suite: incremental [`EdfTimeline`] push/undo against
//! the from-scratch event-driven engine ([`is_schedulable_with`] /
//! [`simulate_into`]) over the very same job list.
//!
//! Two float regimes are exercised:
//!
//! * **lattice** — every time is a multiple of 1/8, so prefix sums are exact
//!   in `f64` no matter the association order; the incremental tree verdict
//!   must then agree with the sequential engine *bit for bit*;
//! * **continuous** — uniform floats, checking verdict-level agreement on
//!   arbitrary magnitudes (sums may associate differently, but verdicts only
//!   diverge on knife-edge queues that uniform sampling never hits).

use proptest::prelude::*;
use rtrm_platform::{ResourceKind, Time, TIME_EPSILON};
use rtrm_sched::{
    is_schedulable_with, reference, simulate_into, EdfScratch, EdfTimeline, JobKey, PlannedJob,
};

/// One step of a randomized admission episode.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push a job with these offsets from the episode's `now`.
    Push {
        release: f64,
        exec: f64,
        deadline: f64,
        pinned: bool,
    },
    /// Retract the most recent job (no-op on an empty timeline).
    Undo,
}

/// Times that are exact multiples of 1/8: all sums are exact dyadics.
fn lattice(steps: std::ops::Range<u32>) -> impl Strategy<Value = f64> {
    steps.prop_map(|i| f64::from(i) * 0.125)
}

fn lattice_op() -> impl Strategy<Value = Op> {
    (lattice(0..32), lattice(0..48), lattice(1..320), 0u8..10).prop_map(
        |(release, exec, deadline, sel)| match sel {
            // ~1 in 5 ops retracts; the rest push (~1 in 5 pushes pinned).
            0..=1 => Op::Undo,
            2..=3 => Op::Push {
                release,
                exec,
                deadline,
                pinned: true,
            },
            _ => Op::Push {
                release,
                exec,
                deadline,
                pinned: false,
            },
        },
    )
}

/// Release offsets straddling the epsilon boundary around `now`, mixed with
/// genuinely dense and genuinely future releases. Offsets within
/// [`TIME_EPSILON`] of zero must classify as dense everywhere (engine,
/// timeline, defer logic); anything beyond takes the future path.
fn eps_release() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-TIME_EPSILON / 2.0),
        Just(TIME_EPSILON / 2.0),
        Just(TIME_EPSILON),
        Just(2.0 * TIME_EPSILON),
        lattice(1..24),
    ]
}

fn eps_op() -> impl Strategy<Value = Op> {
    (eps_release(), lattice(0..48), lattice(1..320), 0u8..10).prop_map(
        |(release, exec, deadline, sel)| match sel {
            0..=1 => Op::Undo,
            _ => Op::Push {
                release,
                exec,
                deadline,
                pinned: false,
            },
        },
    )
}

fn continuous_op() -> impl Strategy<Value = Op> {
    (0.01f64..30.0, 0.0f64..50.0, 0.1f64..250.0, 0u8..10).prop_map(
        |(release, exec, deadline, sel)| match sel {
            0..=1 => Op::Undo,
            2..=3 => Op::Push {
                // Dense queues are the common case: most pushes release at
                // `now` (and are eligible for pinning on a GPU).
                release: 0.0,
                exec,
                deadline,
                pinned: true,
            },
            4..=6 => Op::Push {
                release: 0.0,
                exec,
                deadline,
                pinned: false,
            },
            _ => Op::Push {
                release,
                exec,
                deadline,
                pinned: false,
            },
        },
    )
}

/// Replays `ops` on an [`EdfTimeline`] while maintaining the plain job list,
/// asserting after every step that the retained queue and the incremental
/// verdict agree with a from-scratch engine run.
fn run_differential(kind: ResourceKind, now: f64, ops: &[Op]) -> Result<(), TestCaseError> {
    let now = Time::new(now);
    let mut timeline = EdfTimeline::new(kind, now);
    let mut model: Vec<PlannedJob> = Vec::new();
    let mut scratch = EdfScratch::new();
    let mut outcomes = Vec::new();
    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Push {
                release,
                exec,
                deadline,
                pinned,
            } => {
                let mut job = PlannedJob::new(
                    JobKey(step as u64),
                    now + Time::new(release),
                    Time::new(exec),
                    now + Time::new(deadline),
                );
                // Respect the engine's invariants: pinning is GPU-only and
                // at most one job per resource.
                job.pinned = pinned
                    && kind == ResourceKind::Gpu
                    && release == 0.0
                    && !model.iter().any(|j| j.pinned);
                let verdict = timeline.push(job).is_feasible();
                model.push(job);
                let expected = is_schedulable_with(kind, now, &model, &mut scratch);
                prop_assert_eq!(
                    verdict,
                    expected,
                    "push verdict diverged at step {} on {:?}",
                    step,
                    &model
                );
            }
            Op::Undo => {
                if model.is_empty() {
                    continue;
                }
                let popped = timeline.undo();
                let expected = model.pop().expect("model mirrors timeline");
                prop_assert_eq!(popped, expected, "undo returned the wrong job");
            }
        }
        // The retained queue is the model, element for element.
        prop_assert_eq!(timeline.jobs(), &model[..]);
        // Verdict parity with `is_schedulable_with`...
        let expected = is_schedulable_with(kind, now, &model, &mut scratch);
        prop_assert_eq!(
            timeline.feasible(),
            expected,
            "feasible() diverged at step {} on {:?}",
            step,
            &model
        );
        // ... and with a full `simulate_into` run of the same queue.
        simulate_into(kind, now, &model, None, &mut scratch, &mut outcomes);
        let simulated = outcomes
            .iter()
            .zip(&model)
            .all(|(o, j)| o.meets(j.deadline));
        // `is_schedulable_with` also applies the per-job necessary condition
        // `release.max(now) + exec <= deadline`, which simulation implies:
        // no job can finish earlier than that.
        prop_assert_eq!(
            timeline.feasible(),
            simulated,
            "simulate_into disagreed at step {}",
            step
        );
        // ... and with the scan-based reference oracle, bit for bit.
        prop_assert_eq!(
            timeline.feasible(),
            reference::is_schedulable(kind, now, &model),
            "reference oracle disagreed at step {} on {:?}",
            step,
            &model
        );
    }
    Ok(())
}

proptest! {
    /// CPU, exact dyadic times: bit-for-bit verdict agreement.
    #[test]
    fn cpu_lattice_matches_engine(
        now in lattice(0..64),
        ops in prop::collection::vec(lattice_op(), 1..40),
    ) {
        run_differential(ResourceKind::Cpu, now, &ops)?;
    }

    /// GPU (non-preemptive, pinned jobs), exact dyadic times.
    #[test]
    fn gpu_lattice_matches_engine(
        now in lattice(0..64),
        ops in prop::collection::vec(lattice_op(), 1..40),
    ) {
        run_differential(ResourceKind::Gpu, now, &ops)?;
    }

    /// CPU, continuous times: verdict-level agreement.
    #[test]
    fn cpu_continuous_matches_engine(
        now in 0.0f64..100.0,
        ops in prop::collection::vec(continuous_op(), 1..30),
    ) {
        run_differential(ResourceKind::Cpu, now, &ops)?;
    }

    /// GPU, continuous times: verdict-level agreement.
    #[test]
    fn gpu_continuous_matches_engine(
        now in 0.0f64..100.0,
        ops in prop::collection::vec(continuous_op(), 1..30),
    ) {
        run_differential(ResourceKind::Gpu, now, &ops)?;
    }

    /// Mixed dense / epsilon-boundary / future releases: the segment sweep,
    /// `undo()` restoration of both trees, and the dense classification must
    /// keep every verdict in lockstep with the engine and the reference
    /// oracle on both resource kinds.
    #[test]
    fn epsilon_boundary_releases_match_reference(
        now in lattice(0..64),
        ops in prop::collection::vec(eps_op(), 1..32),
        kind in prop_oneof![Just(ResourceKind::Cpu), Just(ResourceKind::Gpu)],
    ) {
        run_differential(kind, now, &ops)?;
    }

    /// The oracle mode (memoized from-scratch engine) and the incremental
    /// mode agree on every verdict of every episode.
    #[test]
    fn oracle_and_incremental_agree(
        now in lattice(0..64),
        ops in prop::collection::vec(lattice_op(), 1..40),
        kind in prop_oneof![Just(ResourceKind::Cpu), Just(ResourceKind::Gpu)],
    ) {
        let now = Time::new(now);
        let mut incremental = EdfTimeline::new(kind, now);
        let mut oracle = EdfTimeline::new(kind, now);
        oracle.set_oracle(true);
        let mut pinned_present = false;
        for (step, &op) in ops.iter().enumerate() {
            match op {
                Op::Push { release, exec, deadline, pinned } => {
                    let mut job = PlannedJob::new(
                        JobKey(step as u64),
                        now + Time::new(release),
                        Time::new(exec),
                        now + Time::new(deadline),
                    );
                    job.pinned = pinned && kind == ResourceKind::Gpu && !pinned_present;
                    pinned_present |= job.pinned;
                    prop_assert_eq!(
                        incremental.push(job).is_feasible(),
                        oracle.push(job).is_feasible(),
                    );
                }
                Op::Undo => {
                    if incremental.is_empty() {
                        continue;
                    }
                    let popped = incremental.undo();
                    pinned_present &= !popped.pinned;
                    prop_assert_eq!(popped, oracle.undo());
                }
            }
            prop_assert_eq!(incremental.feasible(), oracle.feasible());
        }
    }
}

/// The fallback ladder's probe pattern from the managers' point of view: a
/// dense working set plus `k` future-released phantoms, re-probed at rung
/// `k`, then `k-1`, …, then `0`. On a preemptable resource every one of those
/// verdicts must come from the incremental trees — zero engine fallbacks —
/// while agreeing with the engine and the reference oracle throughout.
#[test]
fn phantom_ladder_stays_incremental_on_cpu() {
    let now = Time::new(4.0);
    let kind = ResourceKind::Cpu;
    let mut tl = EdfTimeline::new(kind, now);
    let mut model: Vec<PlannedJob> = Vec::new();
    let mut scratch = EdfScratch::new();

    // Dense working set, deliberately near saturation so phantom probes flip
    // between feasible and infeasible across rungs.
    for i in 0..6u64 {
        let job = PlannedJob::new(
            JobKey(i),
            now,
            Time::new(1.0 + 0.25 * i as f64),
            now + Time::new(3.0 + 2.5 * i as f64),
        );
        let verdict = tl.push(job).is_feasible();
        model.push(job);
        assert_eq!(
            verdict,
            is_schedulable_with(kind, now, &model, &mut scratch)
        );
    }

    for k in (0..=4usize).rev() {
        for p in 0..k {
            let phantom = PlannedJob::new(
                JobKey(100 + p as u64),
                now + Time::new(2.0 + p as f64), // strictly future
                Time::new(1.5),
                now + Time::new(4.0 + 2.0 * p as f64),
            );
            let verdict = tl.push(phantom).is_feasible();
            model.push(phantom);
            assert_eq!(
                verdict,
                is_schedulable_with(kind, now, &model, &mut scratch),
                "rung {k}, phantom {p}"
            );
            assert_eq!(
                verdict,
                reference::is_schedulable(kind, now, &model),
                "rung {k}, phantom {p} (reference)"
            );
        }
        // The rung failed or succeeded; either way the ladder unwinds the
        // phantoms before trying the next k. Both trees must be restored.
        for _ in 0..k {
            let _ = tl.undo();
            let _ = model.pop();
        }
        assert!(!tl.has_future(), "all phantoms retracted at rung {k}");
        assert_eq!(
            tl.feasible(),
            is_schedulable_with(kind, now, &model, &mut scratch)
        );
    }

    assert_eq!(
        tl.engine_verdicts(),
        0,
        "preemptable ladder probes must never route through the engine"
    );
}
