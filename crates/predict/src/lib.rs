//! # rtrm-predict
//!
//! Workload predictors for prediction-aided resource management
//! (*Niknafs et al., DAC 2019*).
//!
//! The paper does not implement prediction itself; it relies on prior work
//! and evaluates the *resource manager* under controlled prediction quality.
//! Accordingly the centerpiece here is [`OraclePredictor`]: it knows the true
//! next request of a trace and injects errors per the paper's Sec 5.4 error
//! model — the task type is reported incorrectly with probability
//! `1 − type_accuracy`, and the predicted arrival time carries Gaussian noise
//! whose normalized RMS error (normalized by the trace's mean interarrival
//! time) equals `1 − arrival_accuracy`.
//!
//! For end-to-end demonstrations without an oracle, online predictors in the
//! spirit of the authors' prior work are included: a first-order Markov
//! chain over task types ([`MarkovTypePredictor`]) and an exponentially
//! weighted moving average over interarrival gaps
//! ([`EwmaInterarrivalPredictor`]), combined into [`HistoryPredictor`].
//!
//! Beyond the paper's one-step forecast, [`HorizonPredictor`]s emit up to
//! `k` future requests each tagged with a confidence in `[0, 1]`:
//! [`MarkovHorizonPredictor`] iterates the learned type chain `k` steps
//! (confidence = product of transition probabilities, decaying with depth)
//! and [`PatternHorizonPredictor`] adds phase-binned interarrival estimates
//! for periodic (diurnal/weekly) workloads. The simulator gates phantoms on
//! those confidences via `rtrm_core::HorizonPolicy`.
//!
//! Prediction *runtime overhead* (Sec 5.5) is modelled by
//! [`OverheadModel`]: a fixed cost per activation, expressed as a
//! coefficient × the workload's average interarrival time, which the
//! simulator charges by delaying the arriving task's earliest start.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error_model;
mod horizon;
mod online;
mod oracle;
mod two_phase;

pub use error_model::{ErrorModel, OverheadModel};
pub use horizon::{MarkovHorizonPredictor, PatternHorizonPredictor};
pub use online::{EwmaInterarrivalPredictor, HistoryPredictor, MarkovTypePredictor};
pub use oracle::OraclePredictor;
pub use two_phase::{TwoPhaseInterarrivalPredictor, TwoPhasePredictor};

use rtrm_platform::{Request, TaskTypeId, Time};
use serde::{Deserialize, Serialize};

/// A prediction of the next incoming request: its task type and arrival
/// time. (The paper's predictor forecasts exactly these two quantities; the
/// deadline of the phantom task is filled in by the resource manager's
/// deadline model.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted type of the next request.
    pub task_type: TaskTypeId,
    /// Predicted absolute arrival time of the next request.
    pub arrival: Time,
}

/// A [`Prediction`] paired with the predictor's confidence in it.
///
/// Confidence lives in `[0, 1]` and is *multiplicative along a horizon*:
/// step `i` of a k-step forecast carries the probability of the whole chain
/// of events leading to it, so confidence decays naturally with depth. The
/// admission side (`rtrm_core::HorizonPolicy`) keeps a phantom only when
/// its confidence strictly exceeds a threshold θ — which makes θ = 1.0
/// "plan around nothing" and θ = 0.0 "plan around every prediction".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidentPrediction {
    /// The predicted request.
    pub prediction: Prediction,
    /// Probability the predictor assigns to this step, in `[0, 1]`.
    pub confidence: f64,
}

/// An online workload predictor.
///
/// The simulator calls [`observe`](Predictor::observe) on every actual
/// arrival and then [`predict_next`](Predictor::predict_next) to obtain the
/// phantom task the resource manager plans around. Implementations may
/// return `None` when they have no basis for a prediction yet (the manager
/// then plans without one).
pub trait Predictor {
    /// Feeds one actual arrival to the predictor.
    fn observe(&mut self, request: &Request);

    /// Predicts the next request, if possible.
    fn predict_next(&mut self) -> Option<Prediction>;

    /// Predicts up to the next `k` requests, nearest first (multi-step
    /// lookahead — an extension beyond the paper's one-step prediction).
    /// The default implementation forecasts a single step; predictors with
    /// deeper knowledge (notably [`OraclePredictor`]) override it.
    fn predict_horizon(&mut self, k: usize) -> Vec<Prediction> {
        if k == 0 {
            return Vec::new();
        }
        self.predict_next().into_iter().collect()
    }

    /// Predicts up to the next `k` requests with per-step confidences.
    ///
    /// The default bridges [`predict_horizon`](Predictor::predict_horizon)
    /// at confidence 1.0 (a predictor that reports no uncertainty is taken
    /// at its word), so every existing predictor works under a confidence
    /// gate unchanged. [`HorizonPredictor`] implementations override this
    /// to report their real, depth-decaying confidences.
    fn predict_horizon_confident(&mut self, k: usize) -> Vec<ConfidentPrediction> {
        self.predict_horizon(k)
            .into_iter()
            .map(|prediction| ConfidentPrediction {
                prediction,
                confidence: 1.0,
            })
            .collect()
    }

    /// Resets all learned state (between traces).
    fn reset(&mut self);
}

/// A predictor that natively forecasts a *horizon*: up to `k` future
/// requests, nearest first, each with a real confidence estimate.
///
/// The contract beyond [`Predictor`]:
///
/// * `confident_horizon(k)` returns at most `k` entries, ordered by
///   non-decreasing predicted arrival (nearest first);
/// * confidences are in `[0, 1]` and non-increasing with depth — step
///   `i + 1` conditions on step `i`, so its confidence can only shrink;
/// * `confident_horizon(1)` agrees with
///   [`predict_next`](Predictor::predict_next) on the predicted request;
/// * implementations also override
///   [`predict_horizon_confident`](Predictor::predict_horizon_confident)
///   to forward here, so the confidences survive a `dyn Predictor` call.
///
/// # Examples
///
/// ```
/// use rtrm_platform::{Request, RequestId, TaskTypeId, Time};
/// use rtrm_predict::{HorizonPredictor, MarkovHorizonPredictor, Predictor};
///
/// let mut p = MarkovHorizonPredictor::new(2, 0.5);
/// for (i, ty) in [0usize, 1, 0, 1, 0].into_iter().enumerate() {
///     p.observe(&Request {
///         id: RequestId::new(i),
///         arrival: Time::new(2.0 * i as f64),
///         task_type: TaskTypeId::new(ty),
///         deadline: Time::new(100.0),
///     });
/// }
/// let horizon = p.confident_horizon(3);
/// assert_eq!(horizon.len(), 3);
/// // The alternation 0 ↔ 1 is deterministic in the observed history, so
/// // every step keeps full confidence and the types alternate.
/// assert_eq!(horizon[0].prediction.task_type, TaskTypeId::new(1));
/// assert_eq!(horizon[1].prediction.task_type, TaskTypeId::new(0));
/// assert!(horizon.windows(2).all(|w| w[0].confidence >= w[1].confidence));
/// ```
pub trait HorizonPredictor: Predictor {
    /// Forecasts up to `k` future requests with per-step confidences,
    /// nearest first.
    fn confident_horizon(&mut self, k: usize) -> Vec<ConfidentPrediction>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_is_object_safe() {
        fn _takes(_: &mut dyn Predictor) {}
    }

    #[test]
    fn prediction_is_plain_data() {
        let p = Prediction {
            task_type: TaskTypeId::new(3),
            arrival: Time::new(1.5),
        };
        let q = p;
        assert_eq!(p, q);
    }
}
