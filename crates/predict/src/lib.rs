//! # rtrm-predict
//!
//! Workload predictors for prediction-aided resource management
//! (*Niknafs et al., DAC 2019*).
//!
//! The paper does not implement prediction itself; it relies on prior work
//! and evaluates the *resource manager* under controlled prediction quality.
//! Accordingly the centerpiece here is [`OraclePredictor`]: it knows the true
//! next request of a trace and injects errors per the paper's Sec 5.4 error
//! model — the task type is reported incorrectly with probability
//! `1 − type_accuracy`, and the predicted arrival time carries Gaussian noise
//! whose normalized RMS error (normalized by the trace's mean interarrival
//! time) equals `1 − arrival_accuracy`.
//!
//! For end-to-end demonstrations without an oracle, online predictors in the
//! spirit of the authors' prior work are included: a first-order Markov
//! chain over task types ([`MarkovTypePredictor`]) and an exponentially
//! weighted moving average over interarrival gaps
//! ([`EwmaInterarrivalPredictor`]), combined into [`HistoryPredictor`].
//!
//! Prediction *runtime overhead* (Sec 5.5) is modelled by
//! [`OverheadModel`]: a fixed cost per activation, expressed as a
//! coefficient × the workload's average interarrival time, which the
//! simulator charges by delaying the arriving task's earliest start.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error_model;
mod online;
mod oracle;
mod two_phase;

pub use error_model::{ErrorModel, OverheadModel};
pub use online::{EwmaInterarrivalPredictor, HistoryPredictor, MarkovTypePredictor};
pub use oracle::OraclePredictor;
pub use two_phase::{TwoPhaseInterarrivalPredictor, TwoPhasePredictor};

use rtrm_platform::{Request, TaskTypeId, Time};
use serde::{Deserialize, Serialize};

/// A prediction of the next incoming request: its task type and arrival
/// time. (The paper's predictor forecasts exactly these two quantities; the
/// deadline of the phantom task is filled in by the resource manager's
/// deadline model.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted type of the next request.
    pub task_type: TaskTypeId,
    /// Predicted absolute arrival time of the next request.
    pub arrival: Time,
}

/// An online workload predictor.
///
/// The simulator calls [`observe`](Predictor::observe) on every actual
/// arrival and then [`predict_next`](Predictor::predict_next) to obtain the
/// phantom task the resource manager plans around. Implementations may
/// return `None` when they have no basis for a prediction yet (the manager
/// then plans without one).
pub trait Predictor {
    /// Feeds one actual arrival to the predictor.
    fn observe(&mut self, request: &Request);

    /// Predicts the next request, if possible.
    fn predict_next(&mut self) -> Option<Prediction>;

    /// Predicts up to the next `k` requests, nearest first (multi-step
    /// lookahead — an extension beyond the paper's one-step prediction).
    /// The default implementation forecasts a single step; predictors with
    /// deeper knowledge (notably [`OraclePredictor`]) override it.
    fn predict_horizon(&mut self, k: usize) -> Vec<Prediction> {
        if k == 0 {
            return Vec::new();
        }
        self.predict_next().into_iter().collect()
    }

    /// Resets all learned state (between traces).
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_is_object_safe() {
        fn _takes(_: &mut dyn Predictor) {}
    }

    #[test]
    fn prediction_is_plain_data() {
        let p = Prediction {
            task_type: TaskTypeId::new(3),
            arrival: Time::new(1.5),
        };
        let q = p;
        assert_eq!(p, q);
    }
}
