//! Two-phase interarrival prediction, after the spirit of the authors'
//! prior work (Niknafs et al., *"Two-phase interarrival time prediction for
//! runtime resource management"*, DSD 2017).
//!
//! Real request streams alternate between *phases* with distinct arrival
//! rates (bursts vs. lulls). A single smoothing constant either lags behind
//! phase changes (small α) or is noisy within a phase (large α). The
//! two-phase scheme keeps a cheap **phase detector** in front of the
//! estimator: a short-window mean is compared against the long-run
//! estimate, and when they disagree by more than a threshold the estimator
//! is reseeded from the short window, snapping onto the new phase
//! immediately; within a phase the long-run estimate smooths noise.

use std::collections::VecDeque;

use rtrm_platform::{Request, TaskTypeId, Time};

use crate::online::MarkovTypePredictor;
use crate::{Prediction, Predictor};

/// Interarrival predictor with phase-change detection.
///
/// # Examples
///
/// ```
/// use rtrm_platform::Time;
/// use rtrm_predict::TwoPhaseInterarrivalPredictor;
///
/// let mut p = TwoPhaseInterarrivalPredictor::new(4, 2.0);
/// // A slow phase…
/// for i in 0..20 {
///     p.observe_arrival(Time::new(10.0 * i as f64));
/// }
/// // …then a burst: the detector reseeds within a window.
/// for i in 0..6 {
///     p.observe_arrival(Time::new(190.0 + i as f64));
/// }
/// let gap = p.gap_estimate().unwrap().value();
/// assert!(gap < 2.0, "estimate snapped to the burst: {gap}");
/// ```
#[derive(Debug, Clone)]
pub struct TwoPhaseInterarrivalPredictor {
    window: VecDeque<f64>,
    window_len: usize,
    /// Reseed when the short-window mean deviates from the long-run
    /// estimate by more than this factor (or its inverse).
    threshold: f64,
    estimate: Option<f64>,
    last_arrival: Option<Time>,
    phase_changes: u64,
}

impl TwoPhaseInterarrivalPredictor {
    /// Creates a predictor with a `window_len`-sample detector window and a
    /// deviation `threshold` (e.g. 2.0 = reseed when the recent rate is 2×
    /// off).
    ///
    /// # Panics
    ///
    /// Panics if `window_len` is zero or `threshold` is not greater than 1.
    #[must_use]
    pub fn new(window_len: usize, threshold: f64) -> Self {
        assert!(window_len > 0, "window must hold at least one sample");
        assert!(threshold > 1.0, "threshold must exceed 1");
        TwoPhaseInterarrivalPredictor {
            window: VecDeque::with_capacity(window_len),
            window_len,
            threshold,
            estimate: None,
            last_arrival: None,
            phase_changes: 0,
        }
    }

    /// Records one observed arrival instant.
    pub fn observe_arrival(&mut self, arrival: Time) {
        if let Some(prev) = self.last_arrival {
            let gap = (arrival - prev).value().max(0.0);
            if self.window.len() == self.window_len {
                self.window.pop_front();
            }
            self.window.push_back(gap);
            let short: f64 = self.window.iter().sum::<f64>() / self.window.len() as f64;
            match self.estimate {
                None => self.estimate = Some(short),
                Some(long) => {
                    let full = self.window.len() == self.window_len;
                    let deviates = short > long * self.threshold
                        || (short > 0.0 && long > short * self.threshold);
                    if full && deviates {
                        // Phase change: reseed from the short window.
                        self.estimate = Some(short);
                        self.phase_changes += 1;
                    } else {
                        // Within a phase: smooth gently.
                        self.estimate = Some(0.875 * long + 0.125 * gap);
                    }
                }
            }
        }
        self.last_arrival = Some(arrival);
    }

    /// Predicts the next arrival instant, or `None` before two observations.
    #[must_use]
    pub fn predict_arrival(&self) -> Option<Time> {
        Some(self.last_arrival? + Time::new(self.estimate?))
    }

    /// Current interarrival estimate, if any.
    #[must_use]
    pub fn gap_estimate(&self) -> Option<Time> {
        self.estimate.map(Time::new)
    }

    /// Phase changes detected so far (diagnostics).
    #[must_use]
    pub fn phase_changes(&self) -> u64 {
        self.phase_changes
    }

    /// Clears all learned state.
    pub fn clear(&mut self) {
        self.window.clear();
        self.estimate = None;
        self.last_arrival = None;
        self.phase_changes = 0;
    }
}

/// A full [`Predictor`]: Markov chain over types + two-phase interarrival
/// estimation — the closest bundled analogue of the predictors the paper
/// cites as achieving 83 % arrival / 80–95 % type accuracy on real streams.
#[derive(Debug, Clone)]
pub struct TwoPhasePredictor {
    types: MarkovTypePredictor,
    arrivals: TwoPhaseInterarrivalPredictor,
    last_type: Option<TaskTypeId>,
}

impl TwoPhasePredictor {
    /// Creates the predictor for `num_types` types with detector window
    /// `window_len` and deviation `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `num_types` or `window_len` is zero, or `threshold ≤ 1`.
    #[must_use]
    pub fn new(num_types: usize, window_len: usize, threshold: f64) -> Self {
        TwoPhasePredictor {
            types: MarkovTypePredictor::new(num_types),
            arrivals: TwoPhaseInterarrivalPredictor::new(window_len, threshold),
            last_type: None,
        }
    }
}

impl Predictor for TwoPhasePredictor {
    fn observe(&mut self, request: &Request) {
        self.types.observe_type_transition_from_request(request);
        self.arrivals.observe_arrival(request.arrival);
        self.last_type = Some(request.task_type);
    }

    fn predict_next(&mut self) -> Option<Prediction> {
        Some(Prediction {
            task_type: self.types.predict_type()?,
            arrival: self.arrivals.predict_arrival()?,
        })
    }

    fn reset(&mut self) {
        self.types.clear();
        self.arrivals.clear();
        self.last_type = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_converges() {
        let mut p = TwoPhaseInterarrivalPredictor::new(4, 2.0);
        for i in 0..50 {
            p.observe_arrival(Time::new(3.0 * f64::from(i)));
        }
        let gap = p.gap_estimate().unwrap().value();
        assert!((gap - 3.0).abs() < 1e-6, "gap={gap}");
        assert_eq!(p.phase_changes(), 0);
    }

    #[test]
    fn phase_change_reseeds_quickly() {
        let mut p = TwoPhaseInterarrivalPredictor::new(3, 2.0);
        let mut t = 0.0;
        for _ in 0..30 {
            t += 8.0;
            p.observe_arrival(Time::new(t));
        }
        assert!((p.gap_estimate().unwrap().value() - 8.0).abs() < 1e-6);
        // Burst phase: gap 1.
        for _ in 0..4 {
            t += 1.0;
            p.observe_arrival(Time::new(t));
        }
        let gap = p.gap_estimate().unwrap().value();
        assert!(gap < 2.0, "gap should snap to the burst: {gap}");
        assert!(p.phase_changes() >= 1);

        // Compare with a plain EWMA at the smoothing rate used in-phase:
        // after 4 burst samples it still predicts a much larger gap.
        let mut ewma = crate::EwmaInterarrivalPredictor::new(0.125);
        let mut t2 = 0.0;
        for _ in 0..30 {
            t2 += 8.0;
            ewma.observe_arrival(Time::new(t2));
        }
        for _ in 0..4 {
            t2 += 1.0;
            ewma.observe_arrival(Time::new(t2));
        }
        assert!(
            ewma.gap_estimate().unwrap().value() > 2.0 * gap,
            "two-phase must outrun the plain EWMA after a phase change"
        );
    }

    #[test]
    fn slowdown_also_detected() {
        let mut p = TwoPhaseInterarrivalPredictor::new(3, 2.0);
        let mut t = 0.0;
        for _ in 0..20 {
            t += 1.0;
            p.observe_arrival(Time::new(t));
        }
        for _ in 0..4 {
            t += 10.0;
            p.observe_arrival(Time::new(t));
        }
        let gap = p.gap_estimate().unwrap().value();
        assert!(gap > 5.0, "gap should snap to the lull: {gap}");
    }

    #[test]
    fn needs_two_observations() {
        let mut p = TwoPhaseInterarrivalPredictor::new(4, 2.0);
        assert!(p.predict_arrival().is_none());
        p.observe_arrival(Time::new(1.0));
        assert!(p.predict_arrival().is_none());
        p.observe_arrival(Time::new(2.0));
        assert_eq!(p.predict_arrival().unwrap(), Time::new(3.0));
    }

    #[test]
    fn full_predictor_round_trip() {
        use rtrm_platform::RequestId;
        let mut p = TwoPhasePredictor::new(3, 4, 2.0);
        assert!(p.predict_next().is_none());
        for i in 0..10 {
            p.observe(&Request {
                id: RequestId::new(i),
                arrival: Time::new(2.0 * i as f64),
                task_type: TaskTypeId::new(i % 2),
                deadline: Time::new(5.0),
            });
        }
        let pred = p.predict_next().unwrap();
        assert_eq!(pred.task_type, TaskTypeId::new(0), "1 → 0 alternation");
        assert!((pred.arrival.value() - 20.0).abs() < 1e-6);
        p.reset();
        assert!(p.predict_next().is_none());
    }

    #[test]
    #[should_panic(expected = "threshold must exceed 1")]
    fn bad_threshold_rejected() {
        let _ = TwoPhaseInterarrivalPredictor::new(4, 1.0);
    }
}
