//! Prediction quality and overhead models (paper Sec 5.4 / 5.5).

use serde::{Deserialize, Serialize};

use rtrm_platform::Time;

/// Controlled prediction-error injection for the [`OraclePredictor`]
/// (paper Sec 5.4).
///
/// * `type_accuracy` ∈ [0, 1]: probability that the predicted task type is
///   correct at each prediction step (the paper's Fig 4a axis).
/// * `arrival_accuracy` ∈ [0, 1]: one minus the normalized root-mean-square
///   error of the predicted arrival time, normalized by the trace's mean
///   interarrival gap (the paper's Fig 4b axis).
///
/// [`OraclePredictor`]: crate::OraclePredictor
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorModel {
    /// Probability of predicting the correct task type.
    pub type_accuracy: f64,
    /// `1 − NRMSE` of the predicted arrival time.
    pub arrival_accuracy: f64,
}

impl ErrorModel {
    /// Perfectly accurate prediction (Sec 5.2/5.3 and Fig 5 use this).
    #[must_use]
    pub fn perfect() -> Self {
        ErrorModel {
            type_accuracy: 1.0,
            arrival_accuracy: 1.0,
        }
    }

    /// Accurate arrival times, task type correct with probability `accuracy`
    /// (Fig 4a's sweep).
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is outside `[0, 1]`.
    #[must_use]
    pub fn with_type_accuracy(accuracy: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&accuracy),
            "accuracy must be in [0, 1]"
        );
        ErrorModel {
            type_accuracy: accuracy,
            arrival_accuracy: 1.0,
        }
    }

    /// Accurate task types, arrival-time NRMSE of `1 − accuracy`
    /// (Fig 4b's sweep).
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is outside `[0, 1]`.
    #[must_use]
    pub fn with_arrival_accuracy(accuracy: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&accuracy),
            "accuracy must be in [0, 1]"
        );
        ErrorModel {
            type_accuracy: 1.0,
            arrival_accuracy: accuracy,
        }
    }
}

impl Default for ErrorModel {
    fn default() -> Self {
        ErrorModel::perfect()
    }
}

/// Runtime cost of producing a prediction (paper Sec 5.5).
///
/// The paper imposes `time overhead = coefficient × average interarrival
/// time`; the simulator charges it by delaying the *arriving* task's earliest
/// possible start by the overhead while its absolute deadline stays fixed,
/// shrinking the paper's `t_left`. Fig 5's horizontal axis is
/// `coefficient × 100`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct OverheadModel {
    /// Fraction of the mean interarrival time spent on each prediction.
    pub coefficient: f64,
}

impl OverheadModel {
    /// No overhead (all experiments except Sec 5.5).
    #[must_use]
    pub fn none() -> Self {
        OverheadModel { coefficient: 0.0 }
    }

    /// Overhead as a fraction of the mean interarrival time.
    ///
    /// # Panics
    ///
    /// Panics if `coefficient` is negative or non-finite.
    #[must_use]
    pub fn fraction_of_interarrival(coefficient: f64) -> Self {
        assert!(
            coefficient.is_finite() && coefficient >= 0.0,
            "overhead coefficient must be non-negative and finite"
        );
        OverheadModel { coefficient }
    }

    /// The absolute time cost per activation for a workload whose mean
    /// interarrival gap is `mean_interarrival`.
    #[must_use]
    pub fn cost(&self, mean_interarrival: Time) -> Time {
        mean_interarrival * self.coefficient
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(ErrorModel::default(), ErrorModel::perfect());
        let t = ErrorModel::with_type_accuracy(0.75);
        assert_eq!(t.type_accuracy, 0.75);
        assert_eq!(t.arrival_accuracy, 1.0);
        let a = ErrorModel::with_arrival_accuracy(0.5);
        assert_eq!(a.arrival_accuracy, 0.5);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn out_of_range_accuracy_rejected() {
        let _ = ErrorModel::with_type_accuracy(1.5);
    }

    #[test]
    fn overhead_cost_scales() {
        let m = OverheadModel::fraction_of_interarrival(0.04);
        assert_eq!(m.cost(Time::new(3.0)), Time::new(0.12));
        assert_eq!(OverheadModel::none().cost(Time::new(3.0)), Time::ZERO);
    }
}
