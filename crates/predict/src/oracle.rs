//! The trace-aware oracle predictor with controlled error injection.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtrm_platform::{Request, RequestId, TaskTypeId, Time, Trace};

use crate::{ErrorModel, Prediction, Predictor};

/// A predictor that knows the true next request of a fixed trace and
/// degrades it per an [`ErrorModel`] — the evaluation instrument of the
/// paper's Sec 5.2–5.5.
///
/// * With probability `1 − type_accuracy` the reported type is replaced by a
///   uniformly random *different* type from the catalog.
/// * The reported arrival is the true arrival plus Gaussian noise with
///   standard deviation `(1 − arrival_accuracy) × mean interarrival`, so the
///   per-trace normalized RMS error converges to `1 − arrival_accuracy`.
///   Predicted arrivals are clamped to the observation instant (a predictor
///   cannot announce an arrival in the past).
///
/// # Examples
///
/// ```
/// use rtrm_platform::{Request, RequestId, TaskTypeId, Time, Trace};
/// use rtrm_predict::{ErrorModel, OraclePredictor, Predictor};
///
/// let trace = Trace::new(vec![
///     Request { id: RequestId::new(0), arrival: Time::new(0.0),
///               task_type: TaskTypeId::new(0), deadline: Time::new(5.0) },
///     Request { id: RequestId::new(1), arrival: Time::new(2.0),
///               task_type: TaskTypeId::new(1), deadline: Time::new(5.0) },
/// ]);
/// let mut oracle = OraclePredictor::new(&trace, 2, ErrorModel::perfect(), 42);
/// oracle.observe(trace.request(RequestId::new(0)));
/// let p = oracle.predict_next().expect("a next request exists");
/// assert_eq!(p.task_type, TaskTypeId::new(1));
/// assert_eq!(p.arrival, Time::new(2.0));
/// ```
#[derive(Debug, Clone)]
pub struct OraclePredictor {
    trace: Trace,
    num_types: usize,
    error: ErrorModel,
    arrival_sigma: f64,
    rng: StdRng,
    seed: u64,
    last_seen: Option<RequestId>,
}

impl OraclePredictor {
    /// Creates an oracle over `trace`. `num_types` is the catalog size used
    /// for drawing wrong types; `seed` makes error injection reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `num_types` is zero or the accuracies are outside `[0, 1]`.
    #[must_use]
    pub fn new(trace: &Trace, num_types: usize, error: ErrorModel, seed: u64) -> Self {
        assert!(num_types > 0, "catalog must contain at least one type");
        assert!(
            (0.0..=1.0).contains(&error.type_accuracy)
                && (0.0..=1.0).contains(&error.arrival_accuracy),
            "accuracies must be in [0, 1]"
        );
        let mean_gap = trace.mean_interarrival().map_or(0.0, Time::value);
        OraclePredictor {
            trace: trace.clone(),
            num_types,
            error,
            arrival_sigma: (1.0 - error.arrival_accuracy) * mean_gap,
            rng: StdRng::seed_from_u64(seed),
            seed,
            last_seen: None,
        }
    }

    /// A perfectly accurate oracle.
    #[must_use]
    pub fn perfect(trace: &Trace, num_types: usize) -> Self {
        OraclePredictor::new(trace, num_types, ErrorModel::perfect(), 0)
    }

    fn gaussian_noise(&mut self) -> f64 {
        // Box–Muller; only the cosine branch is used.
        let u1: f64 = loop {
            let u = self.rng.gen::<f64>();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Predictor for OraclePredictor {
    fn observe(&mut self, request: &Request) {
        debug_assert_eq!(
            self.trace.request(request.id).arrival,
            request.arrival,
            "observed request must belong to the oracle's trace"
        );
        self.last_seen = Some(request.id);
    }

    fn predict_next(&mut self) -> Option<Prediction> {
        let last = self.last_seen?;
        let truth = *self.trace.next_after(last)?;
        let observed_at = self.trace.request(last).arrival;

        // Task-type error: with probability 1 − accuracy report a uniformly
        // random *other* type.
        let task_type = if self.num_types > 1 && self.rng.gen::<f64>() >= self.error.type_accuracy {
            let mut wrong = self.rng.gen_range(0..self.num_types - 1);
            if wrong >= truth.task_type.index() {
                wrong += 1;
            }
            TaskTypeId::new(wrong)
        } else {
            truth.task_type
        };

        // Arrival-time error: Gaussian with σ = NRMSE × mean interarrival,
        // clamped so the prediction is never before the observation instant.
        let arrival = if self.arrival_sigma > 0.0 {
            let noisy = truth.arrival.value() + self.arrival_sigma * self.gaussian_noise();
            Time::new(noisy.max(observed_at.value()))
        } else {
            truth.arrival
        };

        Some(Prediction { task_type, arrival })
    }

    fn predict_horizon(&mut self, k: usize) -> Vec<Prediction> {
        let Some(last) = self.last_seen else {
            return Vec::new();
        };
        let observed_at = self.trace.request(last).arrival;
        let mut out = Vec::with_capacity(k);
        let mut cursor = last;
        for _ in 0..k {
            let Some(truth) = self.trace.next_after(cursor).copied() else {
                break;
            };
            cursor = truth.id;
            let task_type =
                if self.num_types > 1 && self.rng.gen::<f64>() >= self.error.type_accuracy {
                    let mut wrong = self.rng.gen_range(0..self.num_types - 1);
                    if wrong >= truth.task_type.index() {
                        wrong += 1;
                    }
                    TaskTypeId::new(wrong)
                } else {
                    truth.task_type
                };
            let arrival = if self.arrival_sigma > 0.0 {
                let noisy = truth.arrival.value() + self.arrival_sigma * self.gaussian_noise();
                Time::new(noisy.max(observed_at.value()))
            } else {
                truth.arrival
            };
            out.push(Prediction { task_type, arrival });
        }
        // Guarantee the nearest-first ordering despite arrival noise.
        out.sort_by_key(|a| a.arrival);
        out
    }

    fn reset(&mut self) {
        self.last_seen = None;
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(n: usize, gap: f64) -> Trace {
        Trace::new(
            (0..n)
                .map(|i| Request {
                    id: RequestId::new(i),
                    arrival: Time::new(i as f64 * gap),
                    task_type: TaskTypeId::new(i % 7),
                    deadline: Time::new(10.0),
                })
                .collect(),
        )
    }

    fn drive(oracle: &mut OraclePredictor, trace: &Trace) -> Vec<(Prediction, Request)> {
        let mut out = Vec::new();
        for req in trace.iter() {
            oracle.observe(req);
            if let Some(p) = oracle.predict_next() {
                let truth = trace.next_after(req.id).unwrap();
                out.push((p, *truth));
            }
        }
        out
    }

    #[test]
    fn perfect_oracle_is_exact() {
        let t = trace(50, 1.2);
        let mut o = OraclePredictor::perfect(&t, 7);
        for (p, truth) in drive(&mut o, &t) {
            assert_eq!(p.task_type, truth.task_type);
            assert_eq!(p.arrival, truth.arrival);
        }
    }

    #[test]
    fn no_prediction_before_first_observation_or_after_last() {
        let t = trace(3, 1.0);
        let mut o = OraclePredictor::perfect(&t, 7);
        assert!(o.predict_next().is_none());
        o.observe(t.request(RequestId::new(2)));
        assert!(o.predict_next().is_none(), "no request follows the last");
    }

    #[test]
    fn type_accuracy_converges() {
        let t = trace(4_000, 1.0);
        let mut o = OraclePredictor::new(&t, 7, ErrorModel::with_type_accuracy(0.75), 9);
        let preds = drive(&mut o, &t);
        let correct = preds
            .iter()
            .filter(|(p, truth)| p.task_type == truth.task_type)
            .count();
        let rate = correct as f64 / preds.len() as f64;
        assert!((rate - 0.75).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn wrong_types_are_never_the_truth() {
        let t = trace(500, 1.0);
        let mut o = OraclePredictor::new(&t, 7, ErrorModel::with_type_accuracy(0.0), 4);
        for (p, truth) in drive(&mut o, &t) {
            assert_ne!(p.task_type, truth.task_type);
            assert!(p.task_type.index() < 7);
        }
    }

    #[test]
    fn arrival_nrmse_converges() {
        let t = trace(8_000, 2.0);
        let target_nrmse = 0.25; // accuracy 0.75
        let mut o = OraclePredictor::new(&t, 7, ErrorModel::with_arrival_accuracy(0.75), 17);
        let preds = drive(&mut o, &t);
        let mse: f64 = preds
            .iter()
            .map(|(p, truth)| (p.arrival.value() - truth.arrival.value()).powi(2))
            .sum::<f64>()
            / preds.len() as f64;
        let nrmse = mse.sqrt() / 2.0; // mean interarrival = 2.0
                                      // Clamping at the observation instant skews slightly low; allow 15%.
        assert!(
            (nrmse - target_nrmse).abs() < 0.15 * target_nrmse,
            "nrmse={nrmse}"
        );
    }

    #[test]
    fn predictions_never_precede_observation() {
        let t = trace(1_000, 0.5);
        let mut o = OraclePredictor::new(&t, 7, ErrorModel::with_arrival_accuracy(0.0), 23);
        for req in t.iter() {
            o.observe(req);
            if let Some(p) = o.predict_next() {
                assert!(p.arrival >= req.arrival);
            }
        }
    }

    #[test]
    fn reset_restores_determinism() {
        let t = trace(200, 1.0);
        let mut o = OraclePredictor::new(&t, 7, ErrorModel::with_type_accuracy(0.5), 31);
        let first = drive(&mut o, &t);
        o.reset();
        let second = drive(&mut o, &t);
        assert_eq!(first, second);
    }
}
