//! Multi-step horizon predictors: forecast up to `k` future requests with
//! per-step confidences instead of the paper's single phantom.
//!
//! Both predictors iterate the *same* first-order Markov chain the one-step
//! [`HistoryPredictor`](crate::HistoryPredictor) learns, through the
//! read-only transition-matrix accessors on [`MarkovTypePredictor`] — the
//! chain is estimated once, never re-derived. They differ in the arrival
//! model: [`MarkovHorizonPredictor`] extrapolates a single EWMA gap
//! estimate, while [`PatternHorizonPredictor`] bins gaps by phase within a
//! configured period, tracking diurnal/weekly rate modulation
//! (`rtrm_trace::WorkloadPattern`).

use rtrm_platform::{Request, TaskTypeId, Time};

use crate::{
    ConfidentPrediction, EwmaInterarrivalPredictor, HorizonPredictor, MarkovTypePredictor,
    Prediction, Predictor,
};

/// Walks the learned type chain `k` steps from `last`, pairing each step
/// with a type and the probability of the transition chain so far. Shared
/// by both horizon predictors so their type forecasts cannot drift.
fn walk_chain(
    types: &MarkovTypePredictor,
    k: usize,
    mut step_arrival: impl FnMut(usize) -> Option<Time>,
) -> Vec<(TaskTypeId, Time, f64)> {
    let mut out = Vec::new();
    let Some(mut ty) = types.last_observed() else {
        return out;
    };
    let mut confidence = 1.0;
    for step in 0..k {
        // Most likely successor of the current type; a type with no
        // recorded outgoing transitions falls back to the global mode with
        // its observation share — exactly `predict_type`'s fallback.
        let Some((next, p)) = types
            .most_likely_successor(ty)
            .or_else(|| types.global_mode())
        else {
            break;
        };
        let Some(arrival) = step_arrival(step) else {
            break;
        };
        confidence *= p;
        out.push((next, arrival, confidence));
        ty = next;
    }
    out
}

/// K-step Markov-chain predictor: iterates the [`MarkovTypePredictor`]
/// transition matrix `k` steps, with per-step confidence equal to the
/// *product* of the transition probabilities along the chain — confidence
/// decays naturally with depth. Arrivals extrapolate the EWMA gap estimate:
/// step `i` is forecast at `last arrival + (i + 1) × gap`.
///
/// Its first step is identical to
/// [`HistoryPredictor`](crate::HistoryPredictor)'s one-step prediction
/// (same submodels, same tie-breaks), so gating with θ = 0 at depth 1
/// reproduces the single-phantom path exactly.
///
/// # Examples
///
/// ```
/// use rtrm_platform::{Request, RequestId, TaskTypeId, Time};
/// use rtrm_predict::{HorizonPredictor, MarkovHorizonPredictor, Predictor};
///
/// let mut p = MarkovHorizonPredictor::new(3, 0.5);
/// // A noisy stream: 0 usually goes to 1, but once to 2.
/// for (i, ty) in [0usize, 1, 0, 2, 0, 1, 0].into_iter().enumerate() {
///     p.observe(&Request {
///         id: RequestId::new(i),
///         arrival: Time::new(3.0 * i as f64),
///         task_type: TaskTypeId::new(ty),
///         deadline: Time::new(100.0),
///     });
/// }
/// let horizon = p.confident_horizon(2);
/// assert_eq!(horizon[0].prediction.task_type, TaskTypeId::new(1)); // 0→1: 2/3
/// assert!((horizon[0].confidence - 2.0 / 3.0).abs() < 1e-12);
/// // Step 2 multiplies 1→0's probability (1.0) onto the chain: still 2/3.
/// assert_eq!(horizon[1].prediction.task_type, TaskTypeId::new(0));
/// assert!((horizon[1].confidence - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct MarkovHorizonPredictor {
    types: MarkovTypePredictor,
    arrivals: EwmaInterarrivalPredictor,
}

impl MarkovHorizonPredictor {
    /// Creates a horizon predictor for `num_types` types with EWMA factor
    /// `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `num_types` is zero or `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(num_types: usize, alpha: f64) -> Self {
        MarkovHorizonPredictor {
            types: MarkovTypePredictor::new(num_types),
            arrivals: EwmaInterarrivalPredictor::new(alpha),
        }
    }
}

impl Predictor for MarkovHorizonPredictor {
    fn observe(&mut self, request: &Request) {
        self.types.observe_type_transition_from_request(request);
        self.arrivals.observe_arrival(request.arrival);
    }

    fn predict_next(&mut self) -> Option<Prediction> {
        self.confident_horizon(1).first().map(|c| c.prediction)
    }

    fn predict_horizon(&mut self, k: usize) -> Vec<Prediction> {
        self.confident_horizon(k)
            .into_iter()
            .map(|c| c.prediction)
            .collect()
    }

    fn predict_horizon_confident(&mut self, k: usize) -> Vec<ConfidentPrediction> {
        self.confident_horizon(k)
    }

    fn reset(&mut self) {
        self.types.clear();
        self.arrivals.clear();
    }
}

impl HorizonPredictor for MarkovHorizonPredictor {
    fn confident_horizon(&mut self, k: usize) -> Vec<ConfidentPrediction> {
        let (Some(gap), Some(last)) = (self.arrivals.gap_estimate(), self.arrivals.last_arrival())
        else {
            return Vec::new();
        };
        walk_chain(&self.types, k, |step| {
            Some(last + Time::new(gap.value() * (step as f64 + 1.0)))
        })
        .into_iter()
        .map(|(task_type, arrival, confidence)| ConfidentPrediction {
            prediction: Prediction { task_type, arrival },
            confidence,
        })
        .collect()
    }
}

/// Pattern-aware horizon predictor for periodic workloads: interarrival
/// gaps are averaged per *phase bin* (position within a configured period),
/// so a diurnal or weekly rate profile — busy phases with short gaps, quiet
/// phases with long ones — is learned instead of averaged away. Types walk
/// the same Markov chain as [`MarkovHorizonPredictor`].
///
/// Per-step confidence is the type chain's transition-probability product
/// multiplied by the phase bin's *saturation* `n / (n + 1)` (with `n`
/// observations in the bin) — an unseen phase contributes low confidence, a
/// well-observed one approaches the type confidence alone. Confidence is
/// therefore non-increasing with depth.
///
/// # Examples
///
/// ```
/// use rtrm_platform::{Request, RequestId, TaskTypeId, Time};
/// use rtrm_predict::{HorizonPredictor, PatternHorizonPredictor, Predictor};
///
/// // A period-8 workload: gaps of 1 in the first half, 3 in the second.
/// let mut p = PatternHorizonPredictor::new(1, Time::new(8.0), 4);
/// let mut t = 0.0;
/// for i in 0..64 {
///     p.observe(&Request {
///         id: RequestId::new(i),
///         arrival: Time::new(t),
///         task_type: TaskTypeId::new(0),
///         deadline: Time::new(1000.0),
///     });
///     t += if t % 8.0 < 4.0 { 1.0 } else { 3.0 };
/// }
/// let horizon = p.confident_horizon(2);
/// assert_eq!(horizon.len(), 2);
/// assert!(horizon[0].confidence >= horizon[1].confidence);
/// ```
#[derive(Debug, Clone)]
pub struct PatternHorizonPredictor {
    types: MarkovTypePredictor,
    period: f64,
    gap_sums: Vec<f64>,
    gap_counts: Vec<u64>,
    last_arrival: Option<Time>,
}

impl PatternHorizonPredictor {
    /// Creates a pattern predictor for `num_types` types, a workload period
    /// of `period`, and `bins` phase bins per period.
    ///
    /// # Panics
    ///
    /// Panics if `num_types` or `bins` is zero, or `period` is not positive.
    #[must_use]
    pub fn new(num_types: usize, period: Time, bins: usize) -> Self {
        assert!(period.value() > 0.0, "period must be positive");
        assert!(bins > 0, "need at least one phase bin");
        PatternHorizonPredictor {
            types: MarkovTypePredictor::new(num_types),
            period: period.value(),
            gap_sums: vec![0.0; bins],
            gap_counts: vec![0; bins],
            last_arrival: None,
        }
    }

    /// Phase bin of an absolute instant.
    fn bin_of(&self, t: f64) -> usize {
        let phase = t.rem_euclid(self.period) / self.period;
        ((phase * self.gap_sums.len() as f64) as usize).min(self.gap_sums.len() - 1)
    }

    /// Mean gap observed in the bin covering `t`, the bin's saturation
    /// `n / (n + 1)`, falling back to the global mean gap at saturation 0
    /// when the bin is empty.
    fn gap_at(&self, t: f64) -> Option<(f64, f64)> {
        let bin = self.bin_of(t);
        let n = self.gap_counts[bin];
        if n > 0 {
            return Some((self.gap_sums[bin] / n as f64, n as f64 / (n as f64 + 1.0)));
        }
        let total: u64 = self.gap_counts.iter().sum();
        if total == 0 {
            return None;
        }
        Some((self.gap_sums.iter().sum::<f64>() / total as f64, 0.0))
    }
}

impl Predictor for PatternHorizonPredictor {
    fn observe(&mut self, request: &Request) {
        self.types.observe_type_transition_from_request(request);
        if let Some(prev) = self.last_arrival {
            let gap = (request.arrival - prev).value().max(0.0);
            let bin = self.bin_of(prev.value());
            self.gap_sums[bin] += gap;
            self.gap_counts[bin] += 1;
        }
        self.last_arrival = Some(request.arrival);
    }

    fn predict_next(&mut self) -> Option<Prediction> {
        self.confident_horizon(1).first().map(|c| c.prediction)
    }

    fn predict_horizon(&mut self, k: usize) -> Vec<Prediction> {
        self.confident_horizon(k)
            .into_iter()
            .map(|c| c.prediction)
            .collect()
    }

    fn predict_horizon_confident(&mut self, k: usize) -> Vec<ConfidentPrediction> {
        self.confident_horizon(k)
    }

    fn reset(&mut self) {
        self.types.clear();
        self.gap_sums.fill(0.0);
        self.gap_counts.fill(0);
        self.last_arrival = None;
    }
}

impl HorizonPredictor for PatternHorizonPredictor {
    fn confident_horizon(&mut self, k: usize) -> Vec<ConfidentPrediction> {
        let Some(last) = self.last_arrival else {
            return Vec::new();
        };
        let mut t = last.value();
        let mut saturation = 1.0;
        let mut arrivals = Vec::with_capacity(k);
        for _ in 0..k {
            let Some((gap, s)) = self.gap_at(t) else {
                break;
            };
            t += gap;
            // Saturation compounds like the type chain: each step
            // conditions on the phase estimate that produced the previous.
            saturation *= s.max(f64::EPSILON);
            arrivals.push((Time::new(t), saturation));
        }
        walk_chain(&self.types, arrivals.len(), |step| Some(arrivals[step].0))
            .into_iter()
            .enumerate()
            .map(
                |(i, (task_type, arrival, confidence))| ConfidentPrediction {
                    prediction: Prediction { task_type, arrival },
                    confidence: confidence * arrivals[i].1,
                },
            )
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryPredictor;
    use rtrm_platform::RequestId;

    fn req(i: usize, arrival: f64, ty: usize) -> Request {
        Request {
            id: RequestId::new(i),
            arrival: Time::new(arrival),
            task_type: TaskTypeId::new(ty),
            deadline: Time::new(1000.0),
        }
    }

    #[test]
    fn markov_horizon_first_step_matches_history_predictor() {
        let mut horizon = MarkovHorizonPredictor::new(4, 0.4);
        let mut history = HistoryPredictor::new(4, 0.4);
        for (i, ty) in [0usize, 2, 1, 2, 0, 2, 1, 0, 2].iter().enumerate() {
            let r = req(i, 1.7 * i as f64 + (i % 3) as f64 * 0.3, *ty);
            horizon.observe(&r);
            history.observe(&r);
        }
        assert_eq!(horizon.predict_next(), history.predict_next());
    }

    #[test]
    fn markov_horizon_confidence_is_transition_product() {
        let mut p = MarkovHorizonPredictor::new(3, 0.5);
        // 0→1 twice, 0→2 once; 1→0 and 2→0 always.
        for (i, ty) in [0usize, 1, 0, 2, 0, 1, 0].iter().enumerate() {
            p.observe(&req(i, 2.0 * i as f64, *ty));
        }
        let h = p.confident_horizon(3);
        assert_eq!(h.len(), 3);
        // Step 1: 0→1 at 2/3. Step 2: 1→0 at 1. Step 3: 0→1 at 2/3 again.
        assert!((h[0].confidence - 2.0 / 3.0).abs() < 1e-12);
        assert!((h[1].confidence - 2.0 / 3.0).abs() < 1e-12);
        assert!((h[2].confidence - 4.0 / 9.0).abs() < 1e-12);
        // Arrivals march out by the EWMA gap (constant 2.0 here).
        assert!((h[0].prediction.arrival.value() - 14.0).abs() < 1e-9);
        assert!((h[1].prediction.arrival.value() - 16.0).abs() < 1e-9);
        assert!((h[2].prediction.arrival.value() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn markov_horizon_confidence_never_increases_with_depth() {
        let mut p = MarkovHorizonPredictor::new(3, 0.5);
        for (i, ty) in [0usize, 1, 2, 0, 1, 0, 2, 1, 0].iter().enumerate() {
            p.observe(&req(i, 1.3 * i as f64, *ty));
        }
        let h = p.confident_horizon(8);
        assert!(h.windows(2).all(|w| w[0].confidence >= w[1].confidence));
        assert!(h
            .windows(2)
            .all(|w| w[0].prediction.arrival <= w[1].prediction.arrival));
    }

    #[test]
    fn markov_horizon_empty_without_history() {
        let mut p = MarkovHorizonPredictor::new(2, 0.5);
        assert!(p.confident_horizon(4).is_empty());
        p.observe(&req(0, 0.0, 0));
        // One observation: a type exists but no gap estimate yet.
        assert!(p.confident_horizon(4).is_empty());
    }

    #[test]
    fn markov_horizon_k_zero_is_empty() {
        let mut p = MarkovHorizonPredictor::new(2, 0.5);
        for i in 0..4 {
            p.observe(&req(i, i as f64, i % 2));
        }
        assert!(p.confident_horizon(0).is_empty());
        assert!(p.predict_horizon(0).is_empty());
    }

    #[test]
    fn pattern_learns_phase_dependent_gaps() {
        // A strictly periodic stream (period 8): arrivals at offsets
        // 0,1,2,3,4,7 of every period — dense early phase, one long gap of
        // 3 out of phase 4, then a gap of 1 across the period boundary.
        let mut p = PatternHorizonPredictor::new(1, Time::new(8.0), 4);
        let mut i = 0;
        let mut last = 0.0;
        for period in 0..25 {
            for off in [0.0, 1.0, 2.0, 3.0, 4.0, 7.0] {
                last = period as f64 * 8.0 + off;
                p.observe(&req(i, last, 0));
                i += 1;
            }
        }
        // Last arrival sits at phase 7 (bin 3), whose observed gap is
        // always 1 — a phase-blind global mean would have said ~1.33.
        let h = p.confident_horizon(1);
        let gap = h[0].prediction.arrival.value() - last;
        assert!(
            (gap - 1.0).abs() < 1e-9,
            "expected the boundary-phase gap 1, got {gap}"
        );
        // Two steps further the forecast walks into the dense early phase
        // and keeps predicting short gaps.
        let h = p.confident_horizon(3);
        let step2 = h[1].prediction.arrival.value() - h[0].prediction.arrival.value();
        assert!(
            (step2 - 1.0).abs() < 1e-9,
            "expected the dense-phase gap 1, got {step2}"
        );
    }

    #[test]
    fn pattern_confidence_decays_and_reset_clears() {
        let mut p = PatternHorizonPredictor::new(2, Time::new(10.0), 5);
        for i in 0..40 {
            p.observe(&req(i, 0.9 * i as f64, i % 2));
        }
        let h = p.confident_horizon(4);
        assert_eq!(h.len(), 4);
        assert!(h.iter().all(|c| c.confidence > 0.0 && c.confidence <= 1.0));
        assert!(h.windows(2).all(|w| w[0].confidence >= w[1].confidence));
        p.reset();
        assert!(p.confident_horizon(4).is_empty());
        assert!(p.predict_next().is_none());
    }

    /// The `dyn Predictor` bridge carries the real confidences through.
    #[test]
    fn dyn_bridge_preserves_confidences() {
        let mut p = MarkovHorizonPredictor::new(3, 0.5);
        for (i, ty) in [0usize, 1, 0, 2, 0, 1].iter().enumerate() {
            p.observe(&req(i, 2.0 * i as f64, *ty));
        }
        let direct = p.confident_horizon(3);
        let via_dyn = {
            let dynamic: &mut dyn Predictor = &mut p;
            dynamic.predict_horizon_confident(3)
        };
        assert_eq!(direct, via_dyn);
        assert!(direct.iter().any(|c| c.confidence < 1.0));
    }
}
