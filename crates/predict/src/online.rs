//! Online predictors in the spirit of the authors' prior work
//! (Niknafs et al., DSD'17 / NORCAS'17): lightweight models suitable for
//! runtime use, learning task-type transitions and interarrival gaps from
//! the observed stream only.

use rtrm_platform::{Request, TaskTypeId, Time};

use crate::{Prediction, Predictor};

/// First-order Markov-chain predictor over task types: counts observed
/// `type → type` transitions and predicts the most frequent successor of the
/// last observed type (ties: lowest type id; unseen type: the globally most
/// frequent type).
///
/// # Examples
///
/// ```
/// use rtrm_platform::{Request, RequestId, TaskTypeId, Time};
/// use rtrm_predict::MarkovTypePredictor;
///
/// let mut p = MarkovTypePredictor::new(3);
/// for (i, ty) in [0usize, 1, 0, 1, 0].into_iter().enumerate() {
///     p.observe_type_transition_from_request(&Request {
///         id: RequestId::new(i),
///         arrival: Time::new(i as f64),
///         task_type: TaskTypeId::new(ty),
///         deadline: Time::new(1.0),
///     });
/// }
/// assert_eq!(p.predict_type(), Some(TaskTypeId::new(1))); // 0 → 1 dominates
/// ```
#[derive(Debug, Clone)]
pub struct MarkovTypePredictor {
    counts: Vec<Vec<u64>>,
    totals: Vec<u64>,
    last: Option<TaskTypeId>,
}

impl MarkovTypePredictor {
    /// Creates a predictor for a catalog of `num_types` types.
    ///
    /// # Panics
    ///
    /// Panics if `num_types` is zero.
    #[must_use]
    pub fn new(num_types: usize) -> Self {
        assert!(num_types > 0, "catalog must contain at least one type");
        MarkovTypePredictor {
            counts: vec![vec![0; num_types]; num_types],
            totals: vec![0; num_types],
            last: None,
        }
    }

    /// Records the transition implied by one observed request.
    pub fn observe_type_transition_from_request(&mut self, request: &Request) {
        let ty = request.task_type;
        if let Some(prev) = self.last {
            self.counts[prev.index()][ty.index()] += 1;
        }
        self.totals[ty.index()] += 1;
        self.last = Some(ty);
    }

    /// Predicts the type of the next request, or `None` before any
    /// observation.
    #[must_use]
    pub fn predict_type(&self) -> Option<TaskTypeId> {
        let last = self.last?;
        let row = &self.counts[last.index()];
        let best_row = row
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))
            .filter(|&(_, c)| *c > 0)
            .map(|(i, _)| TaskTypeId::new(i));
        best_row.or_else(|| {
            self.totals
                .iter()
                .enumerate()
                .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))
                .filter(|&(_, c)| *c > 0)
                .map(|(i, _)| TaskTypeId::new(i))
        })
    }

    /// Clears all learned transitions.
    pub fn clear(&mut self) {
        for row in &mut self.counts {
            row.fill(0);
        }
        self.totals.fill(0);
        self.last = None;
    }

    /// Number of task types this chain was built for.
    #[must_use]
    pub fn num_types(&self) -> usize {
        self.totals.len()
    }

    /// The last observed task type, if any.
    #[must_use]
    pub fn last_observed(&self) -> Option<TaskTypeId> {
        self.last
    }

    /// Empirical transition probability `P(to | from)` from the learned
    /// counts, or `0.0` when no transition out of `from` was observed.
    ///
    /// This is the read-only view of the transition matrix that k-step
    /// horizon predictors iterate — they never re-estimate the chain.
    #[must_use]
    pub fn transition_probability(&self, from: TaskTypeId, to: TaskTypeId) -> f64 {
        let row = &self.counts[from.index()];
        let total: u64 = row.iter().sum();
        if total == 0 {
            return 0.0;
        }
        row[to.index()] as f64 / total as f64
    }

    /// The most likely successor of `from` with its transition probability,
    /// or `None` when no transition out of `from` was observed. Ties break
    /// to the lowest type id — identical to [`predict_type`].
    ///
    /// [`predict_type`]: MarkovTypePredictor::predict_type
    #[must_use]
    pub fn most_likely_successor(&self, from: TaskTypeId) -> Option<(TaskTypeId, f64)> {
        let row = &self.counts[from.index()];
        let total: u64 = row.iter().sum();
        row.iter()
            .enumerate()
            .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))
            .filter(|&(_, c)| *c > 0)
            .map(|(i, c)| (TaskTypeId::new(i), *c as f64 / total as f64))
    }

    /// The globally most frequent type with its share of all observations,
    /// or `None` before any observation. Ties break to the lowest type id —
    /// identical to [`predict_type`]'s fallback.
    ///
    /// [`predict_type`]: MarkovTypePredictor::predict_type
    #[must_use]
    pub fn global_mode(&self) -> Option<(TaskTypeId, f64)> {
        let total: u64 = self.totals.iter().sum();
        self.totals
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))
            .filter(|&(_, c)| *c > 0)
            .map(|(i, c)| (TaskTypeId::new(i), *c as f64 / total as f64))
    }
}

/// Exponentially weighted moving average over interarrival gaps: predicts
/// the next arrival as `last arrival + EWMA(gaps)`.
#[derive(Debug, Clone)]
pub struct EwmaInterarrivalPredictor {
    alpha: f64,
    estimate: Option<f64>,
    last_arrival: Option<Time>,
}

impl EwmaInterarrivalPredictor {
    /// Creates a predictor with smoothing factor `alpha` ∈ (0, 1] (higher =
    /// more weight on recent gaps).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        EwmaInterarrivalPredictor {
            alpha,
            estimate: None,
            last_arrival: None,
        }
    }

    /// Records one observed arrival instant.
    pub fn observe_arrival(&mut self, arrival: Time) {
        if let Some(prev) = self.last_arrival {
            let gap = (arrival - prev).value().max(0.0);
            self.estimate = Some(match self.estimate {
                Some(e) => self.alpha * gap + (1.0 - self.alpha) * e,
                None => gap,
            });
        }
        self.last_arrival = Some(arrival);
    }

    /// Predicts the next arrival instant, or `None` before two observations.
    #[must_use]
    pub fn predict_arrival(&self) -> Option<Time> {
        Some(self.last_arrival? + Time::new(self.estimate?))
    }

    /// Current gap estimate, if any.
    #[must_use]
    pub fn gap_estimate(&self) -> Option<Time> {
        self.estimate.map(Time::new)
    }

    /// The last observed arrival instant, if any — the anchor horizon
    /// predictors extrapolate gap multiples from.
    #[must_use]
    pub fn last_arrival(&self) -> Option<Time> {
        self.last_arrival
    }

    /// Clears all learned state.
    pub fn clear(&mut self) {
        self.estimate = None;
        self.last_arrival = None;
    }
}

/// A full [`Predictor`] built from observed history only:
/// [`MarkovTypePredictor`] for the type and [`EwmaInterarrivalPredictor`]
/// for the arrival time. Returns `None` until both sub-models have enough
/// history.
#[derive(Debug, Clone)]
pub struct HistoryPredictor {
    types: MarkovTypePredictor,
    arrivals: EwmaInterarrivalPredictor,
}

impl HistoryPredictor {
    /// Creates a history predictor for `num_types` types with EWMA factor
    /// `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `num_types` is zero or `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(num_types: usize, alpha: f64) -> Self {
        HistoryPredictor {
            types: MarkovTypePredictor::new(num_types),
            arrivals: EwmaInterarrivalPredictor::new(alpha),
        }
    }
}

impl Predictor for HistoryPredictor {
    fn observe(&mut self, request: &Request) {
        self.types.observe_type_transition_from_request(request);
        self.arrivals.observe_arrival(request.arrival);
    }

    fn predict_next(&mut self) -> Option<Prediction> {
        Some(Prediction {
            task_type: self.types.predict_type()?,
            arrival: self.arrivals.predict_arrival()?,
        })
    }

    fn reset(&mut self) {
        self.types.clear();
        self.arrivals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtrm_platform::RequestId;

    fn req(i: usize, arrival: f64, ty: usize) -> Request {
        Request {
            id: RequestId::new(i),
            arrival: Time::new(arrival),
            task_type: TaskTypeId::new(ty),
            deadline: Time::new(1.0),
        }
    }

    #[test]
    fn markov_learns_alternation() {
        let mut p = MarkovTypePredictor::new(4);
        for (i, ty) in [0usize, 2, 0, 2, 0, 2, 0].iter().enumerate() {
            p.observe_type_transition_from_request(&req(i, i as f64, *ty));
        }
        assert_eq!(p.predict_type(), Some(TaskTypeId::new(2)));
    }

    #[test]
    fn markov_falls_back_to_global_mode() {
        let mut p = MarkovTypePredictor::new(4);
        // Only one observation: no transition from type 3 recorded.
        p.observe_type_transition_from_request(&req(0, 0.0, 3));
        assert_eq!(p.predict_type(), Some(TaskTypeId::new(3)));
    }

    #[test]
    fn markov_empty_predicts_none() {
        let p = MarkovTypePredictor::new(4);
        assert_eq!(p.predict_type(), None);
    }

    #[test]
    fn markov_exposes_transition_matrix_read_only() {
        let mut p = MarkovTypePredictor::new(3);
        // Transitions out of 0: 0→1 twice, 0→2 once.
        for (i, ty) in [0usize, 1, 0, 2, 0, 1].iter().enumerate() {
            p.observe_type_transition_from_request(&req(i, i as f64, *ty));
        }
        let from = TaskTypeId::new(0);
        assert!((p.transition_probability(from, TaskTypeId::new(1)) - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.transition_probability(from, TaskTypeId::new(2)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.transition_probability(from, TaskTypeId::new(0)), 0.0);
        let (succ, prob) = p.most_likely_successor(from).unwrap();
        assert_eq!(succ, TaskTypeId::new(1));
        assert!((prob - 2.0 / 3.0).abs() < 1e-12);
        // 2 → 0 is the only recorded transition out of 2.
        assert_eq!(
            p.most_likely_successor(TaskTypeId::new(2)),
            Some((TaskTypeId::new(0), 1.0))
        );
        // A fresh chain has no transitions and no mode at all.
        let empty = MarkovTypePredictor::new(3);
        assert_eq!(empty.most_likely_successor(TaskTypeId::new(0)), None);
        assert_eq!(empty.global_mode(), None);
        assert_eq!(empty.last_observed(), None);
        let (mode, share) = p.global_mode().unwrap();
        assert_eq!(mode, TaskTypeId::new(0));
        assert!((share - 3.0 / 6.0).abs() < 1e-12);
        assert_eq!(p.last_observed(), Some(TaskTypeId::new(1)));
        assert_eq!(p.num_types(), 3);
    }

    /// The accessor pair reproduces `predict_type` exactly (row argmax with
    /// low-id tie-break, global-mode fallback) — the horizon predictor's
    /// first step cannot drift from the one-step path.
    #[test]
    fn markov_accessors_agree_with_predict_type() {
        let mut p = MarkovTypePredictor::new(4);
        for (i, ty) in [3usize, 1, 3, 2, 3, 1, 2].iter().enumerate() {
            p.observe_type_transition_from_request(&req(i, i as f64, *ty));
        }
        let last = p.last_observed().unwrap();
        let via_accessors = p
            .most_likely_successor(last)
            .or_else(|| p.global_mode())
            .map(|(ty, _)| ty);
        assert_eq!(via_accessors, p.predict_type());
    }

    #[test]
    fn ewma_tracks_constant_gap() {
        let mut p = EwmaInterarrivalPredictor::new(0.3);
        for i in 0..10 {
            p.observe_arrival(Time::new(2.0 * f64::from(i)));
        }
        let next = p.predict_arrival().unwrap();
        assert!((next.value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_needs_two_observations() {
        let mut p = EwmaInterarrivalPredictor::new(0.5);
        assert!(p.predict_arrival().is_none());
        p.observe_arrival(Time::new(1.0));
        assert!(p.predict_arrival().is_none());
        p.observe_arrival(Time::new(2.5));
        assert_eq!(p.predict_arrival().unwrap(), Time::new(4.0));
    }

    #[test]
    fn ewma_weights_recent_gaps() {
        let mut p = EwmaInterarrivalPredictor::new(0.9);
        p.observe_arrival(Time::new(0.0));
        p.observe_arrival(Time::new(10.0)); // gap 10
        p.observe_arrival(Time::new(11.0)); // gap 1
        let est = p.gap_estimate().unwrap().value();
        assert!(
            est < 2.5,
            "estimate should chase the recent small gap: {est}"
        );
    }

    #[test]
    fn history_predictor_round_trip() {
        let mut p = HistoryPredictor::new(3, 0.5);
        assert!(p.predict_next().is_none());
        for (i, ty) in [0usize, 1, 0, 1].iter().enumerate() {
            p.observe(&req(i, 1.5 * i as f64, *ty));
        }
        let pred = p.predict_next().unwrap();
        // Last observed type is 1, whose recorded successor is 0.
        assert_eq!(pred.task_type, TaskTypeId::new(0));
        assert!((pred.arrival.value() - 6.0).abs() < 1e-9);
        p.reset();
        assert!(p.predict_next().is_none());
    }
}
