//! Property-based tests for the predictors.

use proptest::prelude::*;

use rtrm_platform::{Request, RequestId, TaskTypeId, Time, Trace};
use rtrm_predict::{
    ErrorModel, EwmaInterarrivalPredictor, OraclePredictor, Predictor,
    TwoPhaseInterarrivalPredictor,
};

fn arbitrary_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0.01f64..5.0, 0usize..9), 2..60).prop_map(|raw| {
        let mut t = 0.0;
        Trace::new(
            raw.into_iter()
                .enumerate()
                .map(|(i, (gap, ty))| {
                    if i > 0 {
                        t += gap;
                    }
                    Request {
                        id: RequestId::new(i),
                        arrival: Time::new(t),
                        task_type: TaskTypeId::new(ty),
                        deadline: Time::new(10.0),
                    }
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Horizon predictions are nearest-first and never precede the
    /// observation instant, whatever the error model.
    #[test]
    fn horizon_is_sorted_and_causal(
        trace in arbitrary_trace(),
        type_acc in 0.0f64..=1.0,
        arr_acc in 0.0f64..=1.0,
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let error = ErrorModel { type_accuracy: type_acc, arrival_accuracy: arr_acc };
        let mut oracle = OraclePredictor::new(&trace, 9, error, seed);
        for req in trace.iter() {
            oracle.observe(req);
            let preds = oracle.predict_horizon(k);
            prop_assert!(preds.len() <= k);
            let mut prev = None;
            for p in &preds {
                prop_assert!(p.arrival >= req.arrival, "prediction in the past");
                prop_assert!(p.task_type.index() < 9);
                if let Some(prev) = prev {
                    prop_assert!(prev <= p.arrival, "horizon must be sorted");
                }
                prev = Some(p.arrival);
            }
        }
    }

    /// With a perfect model the horizon is exactly the next k requests.
    #[test]
    fn perfect_horizon_is_the_truth(trace in arbitrary_trace(), k in 1usize..5) {
        let mut oracle = OraclePredictor::perfect(&trace, 9);
        for (i, req) in trace.iter().enumerate() {
            oracle.observe(req);
            let preds = oracle.predict_horizon(k);
            let expected = (trace.len() - 1 - i).min(k);
            prop_assert_eq!(preds.len(), expected);
            for (j, p) in preds.iter().enumerate() {
                let truth = trace.request(RequestId::new(i + 1 + j));
                prop_assert_eq!(p.task_type, truth.task_type);
                prop_assert_eq!(p.arrival, truth.arrival);
            }
        }
    }

    /// The EWMA estimate always stays inside the range of observed gaps.
    #[test]
    fn ewma_stays_in_observed_range(
        gaps in prop::collection::vec(0.01f64..20.0, 1..40),
        alpha in 0.01f64..=1.0,
    ) {
        let mut p = EwmaInterarrivalPredictor::new(alpha);
        let mut t = 0.0;
        p.observe_arrival(Time::new(t));
        for g in &gaps {
            t += g;
            p.observe_arrival(Time::new(t));
        }
        let est = p.gap_estimate().expect("at least one gap").value();
        let lo = gaps.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = gaps.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "est={est} not in [{lo}, {hi}]");
    }

    /// The two-phase estimator also never leaves the observed gap range.
    #[test]
    fn two_phase_stays_in_observed_range(
        gaps in prop::collection::vec(0.01f64..20.0, 1..40),
        window in 2usize..8,
        threshold in 1.2f64..4.0,
    ) {
        let mut p = TwoPhaseInterarrivalPredictor::new(window, threshold);
        let mut t = 0.0;
        p.observe_arrival(Time::new(t));
        for g in &gaps {
            t += g;
            p.observe_arrival(Time::new(t));
        }
        let est = p.gap_estimate().expect("at least one gap").value();
        let lo = gaps.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = gaps.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "est={est} not in [{lo}, {hi}]");
    }

    /// predict_next and a 1-step horizon agree for the oracle when errors
    /// are disabled (both are the plain truth).
    #[test]
    fn next_equals_one_step_horizon(trace in arbitrary_trace()) {
        let mut a = OraclePredictor::perfect(&trace, 9);
        let mut b = OraclePredictor::perfect(&trace, 9);
        for req in trace.iter() {
            a.observe(req);
            b.observe(req);
            let single = a.predict_next();
            let horizon = b.predict_horizon(1);
            prop_assert_eq!(single.into_iter().collect::<Vec<_>>(), horizon);
        }
    }
}
